"""Command-line front end for the statics pass.

``python -m repro.statics [paths]`` and ``repro statics [paths]`` both
land here.  Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections.abc import Sequence
from typing import Optional

from repro.statics.engine import Report, Rule, run_paths
from repro.statics.rules import ALL_RULE_IDS, ALL_RULES

DEFAULT_PATHS = ("src", "tests")

#: Rules that encode repo-local conventions rather than portable
#: determinism contracts.  ``--profile external`` drops them: DET002
#: polices *this* repo's layering (wall-clock reads allowed only in
#: runtime/perf scopes, which don't exist out-of-tree), and TRIAL001
#: keys off our ``@trial`` decorator.
EXTERNAL_EXCLUDED = frozenset({"DET002", "TRIAL001"})

#: Scope external files are checked under: out-of-tree paths carry no
#: meaningful package structure, so treat everything as simulation-core
#: code — the strictest scope the portable rules guard.
EXTERNAL_SCOPE = "sim"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro statics",
        description="determinism & simulation-invariant static analysis "
                    "(docs/DETERMINISM.md)")
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help=f"files/directories to check "
                             f"(default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable output")
    parser.add_argument("--rules", metavar="A,B", default=None,
                        help="comma-separated subset of rule ids to run "
                             "(disables unused-pragma reporting)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the rules and exit")
    parser.add_argument("--profile", choices=("default", "external"),
                        default="default",
                        help="'external' audits out-of-tree simulation "
                             "models: repo-convention rules "
                             f"({', '.join(sorted(EXTERNAL_EXCLUDED))}) "
                             "are dropped, every file is checked under "
                             f"the '{EXTERNAL_SCOPE}' scope, and "
                             "explicit paths are required")
    return parser


def select_rules(spec: Optional[str]) -> list[Rule]:
    if spec is None:
        return list(ALL_RULES)
    wanted = {part.strip().upper() for part in spec.split(",")
              if part.strip()}
    by_id = {rule.id: rule for rule in ALL_RULES}
    unknown = sorted(wanted - set(by_id))
    if unknown:
        raise SystemExit(
            f"unknown rule id(s): {', '.join(unknown)}; valid ids: "
            f"{', '.join(by_id)}")
    return [by_id[rule_id] for rule_id in by_id if rule_id in wanted]


def render_human(report: Report) -> str:
    parts = [finding.render() for finding in report.findings]
    status = "clean" if report.ok else f"{len(report.findings)} finding(s)"
    parts.append(f"statics: {status} across {report.files_checked} "
                 f"file(s), {report.suppressed} suppressed by pragmas")
    return "\n".join(parts)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            scope = ("everywhere" if rule.scopes is None
                     else "/".join(sorted(rule.scopes)))
            if rule.excluded_scopes:
                scope += f" except {'/'.join(sorted(rule.excluded_scopes))}"
            print(f"  {rule.id:<9} {rule.title}  [{scope}]")
        return 0
    rules = select_rules(args.rules)
    scope: Optional[str] = None
    report_unused = args.rules is None
    if args.profile == "external":
        if args.rules is not None:
            print("repro statics: --profile external and --rules are "
                  "mutually exclusive", file=sys.stderr)
            return 2
        if not args.paths:
            # The default src/tests paths are this repo; an external
            # audit without a target would silently re-check ourselves.
            print("repro statics: --profile external requires explicit "
                  "paths", file=sys.stderr)
            return 2
        rules = [rule for rule in rules
                 if rule.id not in EXTERNAL_EXCLUDED]
        scope = EXTERNAL_SCOPE
        # External code has no reason to know our pragma dialect, so an
        # unused allow[] there is noise, not a stale suppression.
        report_unused = False
    paths = args.paths or list(DEFAULT_PATHS)
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        # A typo'd path must not let the CI gate pass vacuously.
        print(f"repro statics: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2
    report = run_paths(paths, rules, scope=scope,
                       report_unused_pragmas=report_unused,
                       known_rules=set(ALL_RULE_IDS))
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_human(report))
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - module entry
    sys.exit(main())
