"""``python -m repro.statics`` entry point."""

from repro.statics.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
