"""Interprocedural float-time taint (the DET005 engine).

Per-file extraction (:mod:`repro.statics.project`) already reduced every
function to: the taint of each ``schedule*``/``Event`` time argument,
the taint of its return value, and the taint of every argument it
passes onward — each expressed over three atoms: *intrinsic sources*
(float literals, true division, ``float()``, ``time.*``), *own
parameters*, and *call returns*.  This module closes the system over
the call graph:

1. a **return fixpoint** resolves every function's return taint to
   intrinsic sources plus residual own-parameter dependence, and
2. an **obligation pass** walks parameter-dependent sinks up the caller
   graph until an intrinsic source (finding) or an analysis root
   (no caller passes taint — clean) is reached.

The result is SIM001 across call boundaries: ``helper() / 2`` feeding
``schedule`` three frames up still surfaces, attributed to the sink
line with the call chain in the message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.statics.graphs import Program
from repro.statics.project import CallSite, FunctionSummary, Sink, Taint

_MAX_ITER = 50
_MAX_CHAIN = 8


@dataclass(frozen=True)
class TaintFinding:
    """One interprocedural float-taint hit, anchored at the sink."""

    path: str
    line: int
    col: int
    sink_fn: str
    fn_qualname: str
    sources: tuple[str, ...]
    chain: tuple[str, ...]   #: caller path from taint entry down to sink


def _effective_params(target: FunctionSummary) -> list[str]:
    """Positional-argument view of a callee's parameters (``self``
    stripped for methods/constructors)."""
    if target.class_name is not None and target.params:
        return target.params[1:]
    return list(target.params)


class TaintAnalysis:
    """Whole-program float-taint solver over linked summaries."""

    def __init__(self, program: Program) -> None:
        self.program = program
        #: qualname -> (intrinsic sources, residual own-param deps)
        self.returns: dict[str, tuple[frozenset[str], frozenset[str]]] = {
            qual: (frozenset(), frozenset())
            for qual in program.functions}
        #: callee qualname -> [(caller, call site)]
        self.callers: dict[str, list[tuple[FunctionSummary, CallSite]]] = {}
        for fn in program.functions.values():
            for site in fn.calls:
                for target in program.resolve_call(fn, site):
                    self.callers.setdefault(target.qualname, []).append(
                        (fn, site))
        self._solve_returns()

    # -- expansion -------------------------------------------------------
    def expand(self, fn: FunctionSummary,
               taint: Taint) -> tuple[frozenset[str], frozenset[str]]:
        """Resolve a local taint in ``fn``'s context to (intrinsic
        sources, residual dependence on ``fn``'s own parameters)."""
        return self._expand(fn, taint, frozenset())

    def _expand(self, fn: FunctionSummary, taint: Taint,
                in_progress: frozenset[int]) -> tuple[frozenset[str],
                                                      frozenset[str]]:
        sources = set(taint.sources)
        params = {p for p in taint.params if p in fn.params}
        for call_id in taint.calls:
            if call_id in in_progress or call_id >= len(fn.calls):
                continue
            site = fn.calls[call_id]
            guard = in_progress | {call_id}
            for target in self.program.resolve_call(fn, site):
                ret_sources, ret_params = self.returns[target.qualname]
                sources.update(ret_sources)
                if not ret_params:
                    continue
                eff = _effective_params(target)
                for param in ret_params:
                    arg = self._arg_for(site, eff, param)
                    if arg is None:
                        continue
                    arg_sources, arg_params = self._expand(fn, arg, guard)
                    sources.update(arg_sources)
                    params.update(arg_params)
        return frozenset(sources), frozenset(params)

    @staticmethod
    def _arg_for(site: CallSite, eff_params: list[str],
                 param: str) -> Optional[Taint]:
        if param in site.kwargs:
            return site.kwargs[param]
        try:
            index = eff_params.index(param)
        except ValueError:
            return None
        if index < len(site.args):
            return site.args[index]
        return None

    # -- return fixpoint -------------------------------------------------
    def _solve_returns(self) -> None:
        functions = sorted(self.program.functions.values(),
                           key=lambda f: f.qualname)
        for _ in range(_MAX_ITER):
            changed = False
            for fn in functions:
                new = self.expand(fn, fn.returns)
                if new != self.returns[fn.qualname]:
                    old_sources, old_params = self.returns[fn.qualname]
                    self.returns[fn.qualname] = (new[0] | old_sources,
                                                 new[1] | old_params)
                    changed = True
            if not changed:
                break

    # -- sinks + obligations ---------------------------------------------
    def sink_findings(self) -> list[TaintFinding]:
        """All DET005 hits: sinks whose time argument can carry float
        taint, directly or through any resolvable call chain."""
        out: list[TaintFinding] = []
        reported: set[tuple[str, int, int, tuple[str, ...]]] = set()

        def report(fn: FunctionSummary, sink: Sink,
                   sources: frozenset[str], chain: tuple[str, ...]) -> None:
            key = (fn.path, sink.line, sink.col, tuple(sorted(sources)))
            if key in reported or not sources:
                return
            reported.add(key)
            out.append(TaintFinding(
                path=fn.path, line=sink.line, col=sink.col,
                sink_fn=sink.fn, fn_qualname=fn.qualname,
                sources=tuple(sorted(sources)), chain=chain))

        # Obligation: "param P of FN flows into this sink" — walk the
        # caller graph looking for an intrinsically-tainted argument.
        def discharge(fn: FunctionSummary, sink: Sink, param_fn: str,
                      param: str, chain: tuple[str, ...],
                      seen: frozenset[tuple[str, str]]) -> None:
            if len(chain) >= _MAX_CHAIN or (param_fn, param) in seen:
                return
            seen = seen | {(param_fn, param)}
            target = self.program.functions.get(param_fn)
            if target is None:
                return
            eff = _effective_params(target)
            for caller, site in self.callers.get(param_fn, ()):
                arg = self._arg_for(site, eff, param)
                if arg is None:
                    continue
                arg_sources, arg_params = self.expand(caller, arg)
                if arg_sources:
                    report(fn, sink, arg_sources,
                           (f"{caller.qualname}:{site.line}",) + chain)
                for up in sorted(arg_params):
                    discharge(fn, sink, caller.qualname, up,
                              (f"{caller.qualname}:{site.line}",) + chain,
                              seen)

        for fn in sorted(self.program.functions.values(),
                         key=lambda f: f.qualname):
            for sink in fn.sinks:
                if sink.direct:
                    continue       # SIM001's per-file territory
                sources, params = self.expand(fn, sink.taint)
                report(fn, sink, sources, ())
                for param in sorted(params):
                    discharge(fn, sink, fn.qualname, param, (),
                              frozenset())
        out.sort(key=lambda f: (f.path, f.line, f.col, f.sources))
        return out
