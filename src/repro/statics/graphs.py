"""Whole-program linking: symbol table, call graph, message-flow graph.

A :class:`Program` takes the per-file summaries produced by
:mod:`repro.statics.project` and resolves the references a single file
cannot: which function a call site lands in, which class a receiver
type names, which module constant a mailbox ``ref`` spec points at.
Resolution is deliberately *partial* — anything genuinely dynamic stays
unresolved and the rules treat it conservatively — but the repo's actor
wiring (explicit imports, annotated parameters, f-string mailbox
schemes) resolves almost entirely.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Optional

from repro.statics.project import (BOUNDARY_SENDS, CallSite, ClassSummary,
                                   FileSummary, FunctionSummary, MsgSite)

#: Methods whose joint presence marks a class as an *actor*: it owns a
#: mailbox transport, so its private state is reachable from other
#: actors only through messages (FLOW001's ownership model).  A class
#: whose method is registered as a mailbox *handler* is an actor too —
#: it owns state mutated from message deliveries.
ACTOR_METHODS = frozenset({"register_mailbox", "send_ctrl"})

#: Method names defined by builtin containers/str: never candidates for
#: the unique-name call-resolution fallback (``out.append(...)`` on a
#: local list must not resolve to some project class's ``append``).
_BUILTIN_METHODS = frozenset(
    name for typ in (list, dict, set, frozenset, tuple, str, bytes)
    for name in dir(typ))


class Program:
    """The linked whole-program view the flow rules run against."""

    def __init__(self, files: list[FileSummary]) -> None:
        self.files: list[FileSummary] = sorted(files, key=lambda f: f.path)
        #: dotted module name -> file summary (last one wins on
        #: collision, which only bare-stem fixture modules can produce).
        self.modules: dict[str, FileSummary] = {}
        #: (module, function name / Class.method) -> summary
        self.functions: dict[str, FunctionSummary] = {}
        #: (module, class name) -> summary
        self.classes: dict[tuple[str, str], ClassSummary] = {}
        self._classes_by_name: dict[str, list[ClassSummary]] = {}
        self._methods_by_name: dict[str, list[FunctionSummary]] = {}
        for summary in self.files:
            self.modules[summary.module] = summary
            for fn in summary.functions:
                self.functions[fn.qualname] = fn
                if fn.class_name is not None:
                    self._methods_by_name.setdefault(fn.name, []).append(fn)
            for cls in summary.classes.values():
                self.classes[(summary.module, cls.name)] = cls
                self._classes_by_name.setdefault(cls.name, []).append(cls)
        self._mro_cache: dict[tuple[str, str], list[ClassSummary]] = {}
        self._callees_cache: dict[str, list[str]] = {}
        self._reaches_boundary: Optional[dict[str, bool]] = None
        self._handler_names: Optional[frozenset[str]] = None

    # -- symbol resolution ---------------------------------------------
    def file_of(self, fn: FunctionSummary) -> FileSummary:
        return self.modules[fn.module]

    def resolve_class(self, module: str,
                      name: str) -> Optional[ClassSummary]:
        """Resolve a class *name as written in ``module``*: local class,
        explicit import, then unique global name as a fallback."""
        local = self.classes.get((module, name))
        if local is not None:
            return local
        file = self.modules.get(module)
        if file is not None:
            ref = file.import_names.get(name)
            if ref is not None:
                target = self.classes.get((ref[0], ref[1]))
                if target is not None:
                    return target
        candidates = self._classes_by_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def mro(self, cls: ClassSummary) -> list[ClassSummary]:
        """The class and its resolvable ancestors (linearised, cycles
        guarded)."""
        key = (cls.module, cls.name)
        cached = self._mro_cache.get(key)
        if cached is not None:
            return cached
        out: list[ClassSummary] = []
        seen: set[tuple[str, str]] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            ck = (current.module, current.name)
            if ck in seen:
                continue
            seen.add(ck)
            out.append(current)
            for base in current.bases:
                resolved = self.resolve_class(current.module, base)
                if resolved is not None:
                    stack.append(resolved)
        self._mro_cache[key] = out
        return out

    def related(self, a: ClassSummary, b: ClassSummary) -> bool:
        """True when one class is (transitively) a base of the other."""
        ka, kb = (a.module, a.name), (b.module, b.name)
        return any((c.module, c.name) == kb for c in self.mro(a)) or \
            any((c.module, c.name) == ka for c in self.mro(b))

    def method_of(self, cls: ClassSummary,
                  name: str) -> Optional[FunctionSummary]:
        for ancestor in self.mro(cls):
            fn = self.functions.get(
                f"{ancestor.module}:{ancestor.name}.{name}")
            if fn is not None:
                return fn
        return None

    def _handler_method_names(self) -> frozenset[str]:
        """Method names registered as mailbox handlers anywhere in the
        program (``register_mailbox(name, agent.on_message)`` marks
        ``on_message``)."""
        if self._handler_names is None:
            names: set[str] = set()
            for _, site in self.iter_msg_sites():
                if site.api == "register" and site.handler is not None \
                        and site.handler.get("kind") == "method":
                    names.add(site.handler["name"])
            self._handler_names = frozenset(names)
        return self._handler_names

    def is_actor(self, cls: ClassSummary) -> bool:
        methods: set[str] = set()
        for ancestor in self.mro(cls):
            methods.update(ancestor.methods)
        if ACTOR_METHODS <= methods:
            return True
        return bool(methods & self._handler_method_names())

    def actor_classes(self) -> list[ClassSummary]:
        return [cls for (_, _), cls in sorted(self.classes.items())
                if self.is_actor(cls)]

    # -- call graph ------------------------------------------------------
    def resolve_call(self, fn: FunctionSummary,
                     site: CallSite) -> list[FunctionSummary]:
        """Possible targets of ``site`` inside ``fn`` (empty when the
        callee is a builtin / stdlib / genuinely dynamic)."""
        if site.kind == "self" and site.recv is not None:
            cls = self.classes.get((fn.module, site.recv))
            if cls is not None:
                target = self.method_of(cls, site.name)
                return [target] if target is not None else []
            return []
        if site.kind == "name":
            return self._resolve_name(fn.module, site.name)
        # kind == "method"
        if site.recv is not None:
            cls = self.resolve_class(fn.module, site.recv)
            if cls is not None:
                target = self.method_of(cls, site.name)
                return [target] if target is not None else []
        # Unresolved receiver: a uniquely-named project method still
        # resolves (one definition means one possible target) — except
        # builtin-container method names, where the receiver is far
        # more likely a plain list/dict than the one project class
        # that happens to define, say, ``append``.
        if site.name in _BUILTIN_METHODS:
            return []
        unique = self._methods_by_name.get(site.name, [])
        if len(unique) == 1:
            return [unique[0]]
        return []

    def _resolve_name(self, module: str,
                      name: str) -> list[FunctionSummary]:
        file = self.modules.get(module)
        if "." in name:          # module-alias call: pkg.fn(...)
            mod_part, fn_name = name.rsplit(".", 1)
            target_file = self.modules.get(mod_part)
            if target_file is None:
                return []
            return self._module_symbol(target_file.module, fn_name)
        if file is not None:
            ref = file.import_names.get(name)
            if ref is not None:
                return self._module_symbol(ref[0], ref[1])
        return self._module_symbol(module, name)

    def _module_symbol(self, module: str,
                       name: str) -> list[FunctionSummary]:
        fn = self.functions.get(f"{module}:{name}")
        if fn is not None:
            return [fn]
        cls = self.classes.get((module, name))
        if cls is not None:      # constructor call -> __init__
            init = self.method_of(cls, "__init__")
            return [init] if init is not None else []
        return []

    def callees(self, fn: FunctionSummary) -> list[str]:
        cached = self._callees_cache.get(fn.qualname)
        if cached is not None:
            return cached
        out: list[str] = []
        seen: set[str] = set()
        for site in fn.calls:
            for target in self.resolve_call(fn, site):
                if target.qualname not in seen:
                    seen.add(target.qualname)
                    out.append(target.qualname)
        self._callees_cache[fn.qualname] = out
        return out

    def closure(self, fn: FunctionSummary) -> set[str]:
        """Transitive callee closure of ``fn`` (including itself)."""
        out: set[str] = set()
        stack = [fn.qualname]
        while stack:
            qual = stack.pop()
            if qual in out:
                continue
            out.add(qual)
            target = self.functions.get(qual)
            if target is not None:
                stack.extend(self.callees(target))
        return out

    def reaches_boundary_send(self, fn: FunctionSummary) -> bool:
        """True when ``fn`` (or anything it transitively calls) invokes
        a cross-actor send primitive."""
        if self._reaches_boundary is None:
            flags = {f.qualname: f.boundary_send
                     for f in self.functions.values()}
            changed = True
            while changed:       # propagate callee flags to callers
                changed = False
                for f in self.functions.values():
                    if flags[f.qualname]:
                        continue
                    if any(flags.get(c, False) for c in self.callees(f)):
                        flags[f.qualname] = True
                        changed = True
            self._reaches_boundary = flags
        return self._reaches_boundary.get(fn.qualname, False)

    # -- message-flow graph ----------------------------------------------
    def iter_msg_sites(self) -> Iterator[tuple[FunctionSummary, MsgSite]]:
        for file in self.files:
            for fn in file.functions:
                for site in fn.msg_sites:
                    yield fn, site

    def resolved_spec(self, fn: FunctionSummary,
                      site: MsgSite) -> tuple[str, str]:
        """Resolve a mailbox-name spec to ``("exact", name)`` /
        ``("scheme", prefix)`` / ``("dynamic", why)``.

        ``ref`` specs chase module constants through imports;
        ``ref_call`` specs chase helper functions whose every return is
        a constant or constant-prefix f-string (``_agg_mailbox`` →
        ``("scheme", "agg:")``).
        """
        kind, value = site.spec_kind, site.spec_value
        if kind in ("exact", "scheme"):
            return kind, value
        if kind == "ref":
            file = self.file_of(fn)
            if value in file.constants:
                return "exact", file.constants[value]
            ref = file.import_names.get(value)
            if ref is not None:
                target_file = self.modules.get(ref[0])
                if target_file is not None and ref[1] in \
                        target_file.constants:
                    return "exact", target_file.constants[ref[1]]
            return "dynamic", f"unresolved name {value!r}"
        if kind == "ref_call":
            for target in self._resolve_name(fn.module, value):
                spec = target.returns_str_spec
                if spec is not None and spec[0] in ("exact", "scheme"):
                    return spec[0], spec[1]
            return "dynamic", f"unresolved helper {value}()"
        return "dynamic", value

    # -- debugging dump --------------------------------------------------
    def dump(self) -> str:
        """Deterministic text rendering of the linked graphs, for
        ``repro statics --flow --graph-dump``."""
        lines: list[str] = []
        lines.append(f"program: {len(self.files)} file(s), "
                     f"{len(self.functions)} function(s), "
                     f"{len(self.classes)} class(es)")
        actors = self.actor_classes()
        lines.append("")
        lines.append(f"actor classes ({len(actors)}):")
        for cls in actors:
            lines.append(f"  {cls.module}:{cls.name}")
        lines.append("")
        lines.append("message sites:")
        for fn, site in self.iter_msg_sites():
            kind, value = self.resolved_spec(fn, site)
            lines.append(f"  {site.api:<8} {kind}:{value!r}  at "
                         f"{fn.path}:{site.line} in {fn.qualname}")
        lines.append("")
        lines.append("call graph (project-resolved edges):")
        for qual in sorted(self.functions):
            callees = self.callees(self.functions[qual])
            if callees:
                boundary = (" [boundary]" if
                            self.reaches_boundary_send(
                                self.functions[qual]) else "")
            else:
                boundary = ""
            if callees or boundary:
                lines.append(f"  {qual}{boundary}")
                for callee in sorted(callees):
                    lines.append(f"    -> {callee}")
        return "\n".join(lines)


def boundary_send_names() -> frozenset[str]:
    """The cross-actor send primitives (re-exported for tests/docs)."""
    return BOUNDARY_SENDS
