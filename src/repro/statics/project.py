"""Per-file summaries for the whole-program (``--flow``) statics layer.

The flow rules (:mod:`repro.statics.flow`) need facts no single-file AST
visit can provide: who calls whom, which mailboxes are registered where,
what flows into a ``schedule()`` three calls away.  Rather than keeping
every file's AST alive, the project layer reduces each file to a plain
JSON-able :class:`FileSummary` — symbol table entries, resolved-enough
call sites, message-flow sites, local taint seeds — and the global
phases (:mod:`repro.statics.graphs`, :mod:`repro.statics.taint`) link
summaries only.

Because a summary is a pure function of the file's bytes, it caches
content-keyed on disk (sha256 of source + format version): the CI flow
gate re-parses only files that changed since the last run, which is what
keeps the whole-program pass inside its time budget.

Granularity: one :class:`FunctionSummary` per top-level function, per
method, and one ``<module>`` pseudo-function for module-level
statements.  Nested ``def``\\ s (the deployment's sender closures, say)
are *folded into* their enclosing function — their calls, sends, and
sinks belong to the closure's builder for flow purposes — except their
``return`` statements, which do not taint the outer return.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from dataclasses import dataclass, field
from collections.abc import Callable, Iterator, Sequence
from typing import Any, Optional

from repro.statics.engine import scope_of

#: Bump when the summary format or the extraction logic changes: a
#: version mismatch is simply a cache miss.
SUMMARY_VERSION = 1

#: Scheduling sinks whose first positional argument is simulated time.
SINK_FNS = frozenset({"schedule", "schedule_at", "schedule_fast",
                      "inject_at", "Event"})

#: Calls that yield integers (or otherwise launder float taint away).
_SANITIZERS = frozenset({"int", "exact_ns", "len", "round", "floor",
                         "ceil", "ns"})

#: Builtins that propagate their arguments' taint to their result.
_PROPAGATORS = frozenset({"min", "max", "abs", "sum", "divmod", "sorted",
                          "list", "tuple"})

#: Cross-boundary send primitives: a call to any of these means the
#: enclosing function feeds data across an actor boundary.
BOUNDARY_SENDS = frozenset({"send_ctrl", "send_up", "forward_init"})

#: The mailbox API the message-flow graph is extracted from.
MAILBOX_SEND = "send_ctrl"
MAILBOX_REGISTER = "register_mailbox"


# ----------------------------------------------------------------------
# Plain-data records
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Taint:
    """A local taint value: which float sources, parameters, and call
    returns an expression (transitively, within one function) depends
    on.  Call ids index the owning function's ``calls`` list; the global
    fixpoint resolves them."""

    sources: tuple[str, ...] = ()
    params: tuple[str, ...] = ()
    calls: tuple[int, ...] = ()

    @property
    def empty(self) -> bool:
        return not (self.sources or self.params or self.calls)

    def merged(self, other: "Taint") -> "Taint":
        if other.empty:
            return self
        if self.empty:
            return other
        return Taint(
            sources=tuple(sorted(set(self.sources) | set(other.sources))),
            params=tuple(sorted(set(self.params) | set(other.params))),
            calls=tuple(sorted(set(self.calls) | set(other.calls))))

    def to_dict(self) -> dict[str, Any]:
        return {"sources": list(self.sources), "params": list(self.params),
                "calls": list(self.calls)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Taint":
        return cls(sources=tuple(data["sources"]),
                   params=tuple(data["params"]),
                   calls=tuple(data["calls"]))


EMPTY_TAINT = Taint()


@dataclass
class CallSite:
    """One call expression, classified just enough to resolve globally.

    ``kind``: ``"name"`` (plain or dotted module function / constructor),
    ``"self"`` (method on the enclosing instance), ``"method"`` (method
    on a receiver whose local type is ``recv`` — or unresolved when
    ``recv`` is None).
    """

    id: int
    line: int
    col: int
    kind: str
    name: str
    recv: Optional[str] = None
    args: list[Taint] = field(default_factory=list)
    kwargs: dict[str, Taint] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"id": self.id, "line": self.line, "col": self.col,
                "kind": self.kind, "name": self.name, "recv": self.recv,
                "args": [t.to_dict() for t in self.args],
                "kwargs": {k: t.to_dict() for k, t in self.kwargs.items()}}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CallSite":
        return cls(id=data["id"], line=data["line"], col=data["col"],
                   kind=data["kind"], name=data["name"], recv=data["recv"],
                   args=[Taint.from_dict(t) for t in data["args"]],
                   kwargs={k: Taint.from_dict(t)
                           for k, t in data["kwargs"].items()})


@dataclass
class Sink:
    """A scheduling call's time argument inside one function.

    ``direct`` flags taint visible inside the argument expression itself
    — SIM001's (per-file) territory, which DET005 therefore skips."""

    line: int
    col: int
    fn: str
    taint: Taint
    direct: bool

    def to_dict(self) -> dict[str, Any]:
        return {"line": self.line, "col": self.col, "fn": self.fn,
                "taint": self.taint.to_dict(), "direct": self.direct}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Sink":
        return cls(line=data["line"], col=data["col"], fn=data["fn"],
                   taint=Taint.from_dict(data["taint"]),
                   direct=data["direct"])


@dataclass
class MsgSite:
    """One ``send_ctrl`` / ``register_mailbox`` call site.

    ``spec`` is the mailbox-name argument reduced to one of:
    ``("exact", name)``, ``("scheme", prefix)`` for f-strings with a
    constant prefix, ``("ref", identifier)`` for names resolved at link
    time against module constants, ``("ref_call", callee)`` for helper
    functions returning a name, or ``("dynamic", repr)``."""

    api: str
    line: int
    col: int
    spec_kind: str
    spec_value: str
    #: For registrations: the handler argument, reduced to a resolvable
    #: hint ({"kind": "name"|"call"|"method", ...}) or None.
    handler: Optional[dict[str, str]] = None

    def to_dict(self) -> dict[str, Any]:
        return {"api": self.api, "line": self.line, "col": self.col,
                "spec_kind": self.spec_kind, "spec_value": self.spec_value,
                "handler": self.handler}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MsgSite":
        return cls(api=data["api"], line=data["line"], col=data["col"],
                   spec_kind=data["spec_kind"], spec_value=data["spec_value"],
                   handler=data["handler"])


@dataclass
class OrderSite:
    """A nondeterministic-ordering site (DET003/DET004 shape) inside one
    function — promoted to MSG002 when the function feeds a boundary."""

    rule: str
    line: int
    col: int
    desc: str

    def to_dict(self) -> dict[str, Any]:
        return {"rule": self.rule, "line": self.line, "col": self.col,
                "desc": self.desc}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "OrderSite":
        return cls(rule=data["rule"], line=data["line"], col=data["col"],
                   desc=data["desc"])


@dataclass
class AccessSite:
    """A store to / call of a private member on a non-``self`` receiver
    whose local type resolved — FLOW001 raw material."""

    line: int
    col: int
    recv_type: str
    member: str
    mode: str  # "store" | "call"

    def to_dict(self) -> dict[str, Any]:
        return {"line": self.line, "col": self.col,
                "recv_type": self.recv_type, "member": self.member,
                "mode": self.mode}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AccessSite":
        return cls(line=data["line"], col=data["col"],
                   recv_type=data["recv_type"], member=data["member"],
                   mode=data["mode"])


@dataclass
class FunctionSummary:
    """Everything the global phases need to know about one function."""

    qualname: str
    name: str
    module: str
    path: str
    lineno: int
    class_name: Optional[str] = None
    params: list[str] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    sinks: list[Sink] = field(default_factory=list)
    returns: Taint = EMPTY_TAINT
    #: Mailbox-name spec when every return is a constant / const-prefix
    #: f-string (``("exact", v)`` / ``("scheme", p)``), else None.
    returns_str_spec: Optional[tuple[str, str]] = None
    msg_sites: list[MsgSite] = field(default_factory=list)
    boundary_send: bool = False
    order_sites: list[OrderSite] = field(default_factory=list)
    private_access: list[AccessSite] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname, "name": self.name,
            "module": self.module, "path": self.path, "lineno": self.lineno,
            "class_name": self.class_name, "params": self.params,
            "calls": [c.to_dict() for c in self.calls],
            "sinks": [s.to_dict() for s in self.sinks],
            "returns": self.returns.to_dict(),
            "returns_str_spec": (list(self.returns_str_spec)
                                 if self.returns_str_spec else None),
            "msg_sites": [m.to_dict() for m in self.msg_sites],
            "boundary_send": self.boundary_send,
            "order_sites": [o.to_dict() for o in self.order_sites],
            "private_access": [a.to_dict() for a in self.private_access],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FunctionSummary":
        spec = data["returns_str_spec"]
        return cls(
            qualname=data["qualname"], name=data["name"],
            module=data["module"], path=data["path"], lineno=data["lineno"],
            class_name=data["class_name"], params=list(data["params"]),
            calls=[CallSite.from_dict(c) for c in data["calls"]],
            sinks=[Sink.from_dict(s) for s in data["sinks"]],
            returns=Taint.from_dict(data["returns"]),
            returns_str_spec=(spec[0], spec[1]) if spec else None,
            msg_sites=[MsgSite.from_dict(m) for m in data["msg_sites"]],
            boundary_send=data["boundary_send"],
            order_sites=[OrderSite.from_dict(o)
                         for o in data["order_sites"]],
            private_access=[AccessSite.from_dict(a)
                            for a in data["private_access"]])


@dataclass
class ClassSummary:
    """One class: bases as written, method names, and the attribute
    types the constructor's annotated parameters pin down."""

    name: str
    module: str
    lineno: int
    bases: list[str] = field(default_factory=list)
    methods: list[str] = field(default_factory=list)
    #: instance attr -> local type ref ("Class", "list:Class", ...).
    attr_types: dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "module": self.module,
                "lineno": self.lineno, "bases": self.bases,
                "methods": self.methods, "attr_types": self.attr_types}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ClassSummary":
        return cls(name=data["name"], module=data["module"],
                   lineno=data["lineno"], bases=list(data["bases"]),
                   methods=list(data["methods"]),
                   attr_types=dict(data["attr_types"]))


@dataclass
class FileSummary:
    """The whole-file record the global phases link against."""

    path: str
    module: str
    scope: str
    sha: str
    #: local alias -> dotted module (``import x.y as z``).
    import_modules: dict[str, str] = field(default_factory=dict)
    #: local name -> (module, original) (``from m import n as l``).
    import_names: dict[str, list[str]] = field(default_factory=dict)
    #: module-level string constants.
    constants: dict[str, str] = field(default_factory=dict)
    classes: dict[str, ClassSummary] = field(default_factory=dict)
    functions: list[FunctionSummary] = field(default_factory=list)
    parse_error: Optional[str] = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": SUMMARY_VERSION,
            "path": self.path, "module": self.module, "scope": self.scope,
            "sha": self.sha, "import_modules": self.import_modules,
            "import_names": self.import_names, "constants": self.constants,
            "classes": {k: c.to_dict() for k, c in self.classes.items()},
            "functions": [f.to_dict() for f in self.functions],
            "parse_error": self.parse_error,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FileSummary":
        return cls(
            path=data["path"], module=data["module"], scope=data["scope"],
            sha=data["sha"],
            import_modules=dict(data["import_modules"]),
            import_names={k: list(v)
                          for k, v in data["import_names"].items()},
            constants=dict(data["constants"]),
            classes={k: ClassSummary.from_dict(c)
                     for k, c in data["classes"].items()},
            functions=[FunctionSummary.from_dict(f)
                       for f in data["functions"]],
            parse_error=data["parse_error"])


# ----------------------------------------------------------------------
# Module naming
# ----------------------------------------------------------------------


def module_name_of(path: str) -> str:
    """Dotted module name for files under a ``repro`` package tree;
    the bare stem otherwise (flat namespace — how the fixture corpus's
    mini-projects import each other)."""
    parts = os.path.normpath(path).split(os.sep)
    if "repro" in parts:
        tail = parts[parts.index("repro"):]
        tail[-1] = tail[-1][:-3] if tail[-1].endswith(".py") else tail[-1]
        if tail[-1] == "__init__":
            tail = tail[:-1]
        return ".".join(tail)
    stem = parts[-1]
    return stem[:-3] if stem.endswith(".py") else stem


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------


def _walk_own(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own statements, pruning nested function and
    class definitions (their returns are not the outer function's)."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            stack.extend(ast.iter_child_nodes(node))


def _walk_folded(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function including nested defs/lambdas, pruning nested
    ClassDefs only (their methods are summarized separately)."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, ast.ClassDef):
            stack.extend(ast.iter_child_nodes(node))


def _annotation_type(annotation: Optional[ast.expr]) -> Optional[str]:
    """Reduce a type annotation to a local type ref: ``"C"``,
    ``"list:C"`` for list/tuple/sequence containers, ``"dict:C"`` for
    mapping values; peels ``Optional``/quotes."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Subscript):
        head = annotation.value
        head_name = (head.id if isinstance(head, ast.Name)
                     else head.attr if isinstance(head, ast.Attribute)
                     else None)
        if head_name is None:
            return None
        inner = annotation.slice
        if head_name in ("Optional",):
            return _annotation_type(inner)
        if head_name in ("list", "List", "Sequence", "Iterable", "tuple",
                         "Tuple", "frozenset", "set", "Set"):
            elt = (inner.elts[0] if isinstance(inner, ast.Tuple)
                   and inner.elts else inner)
            base = _annotation_type(elt)
            return f"list:{base}" if base else None
        if head_name in ("dict", "Dict", "Mapping", "MutableMapping"):
            if isinstance(inner, ast.Tuple) and len(inner.elts) == 2:
                base = _annotation_type(inner.elts[1])
                return f"dict:{base}" if base else None
    return None


def _element_type(ref: Optional[str]) -> Optional[str]:
    if ref and ":" in ref:
        return ref.split(":", 1)[1]
    return None


class _Extractor:
    """One file's extraction pass."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.module = module_name_of(path)
        self.summary = FileSummary(
            path=path, module=self.module, scope=scope_of(path),
            sha=content_key(source))
        #: local type query for the function currently being
        #: summarized; rebound by :meth:`_type_env` per function.
        self._expr_type: Callable[[ast.expr], Optional[str]] = \
            lambda expr: None
        #: the current function's folded subtree (name-spec scope).
        self._fn_nodes: Sequence[ast.AST] = ()
        self._collect_imports()
        self._collect_constants()
        self._collect_classes()

    # -- module-level tables -------------------------------------------
    def _collect_imports(self) -> None:
        out = self.summary
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    out.import_modules[alias.asname
                                       or alias.name.split(".")[0]] = \
                        alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    out.import_names[alias.asname or alias.name] = [
                        node.module, alias.name]

    def _collect_constants(self) -> None:
        for stmt in self.tree.body:
            targets: list[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if (value is not None and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)):
                for target in targets:
                    if isinstance(target, ast.Name):
                        self.summary.constants[target.id] = value.value

    def _collect_classes(self) -> None:
        for stmt in self.tree.body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            cls = ClassSummary(name=stmt.name, module=self.module,
                               lineno=stmt.lineno)
            for base in stmt.bases:
                if isinstance(base, ast.Name):
                    cls.bases.append(base.id)
                elif isinstance(base, ast.Attribute):
                    cls.bases.append(base.attr)
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods.append(item.name)
                    self._collect_attr_types(cls, item)
                elif (isinstance(item, ast.AnnAssign)
                      and isinstance(item.target, ast.Name)):
                    ref = _annotation_type(item.annotation)
                    if ref is not None:
                        cls.attr_types[item.target.id] = ref
            self.summary.classes[stmt.name] = cls

    def _collect_attr_types(self, cls: ClassSummary,
                            method: ast.AST) -> None:
        """``self.x = param`` with an annotated param, and annotated
        ``self.x: T`` assignments, type the instance attribute."""
        args = getattr(method, "args", None)
        if args is None or not args.args:
            return
        self_name = args.args[0].arg
        param_types: dict[str, str] = {}
        for arg in list(args.args) + list(args.kwonlyargs):
            ref = _annotation_type(arg.annotation)
            if ref is not None:
                param_types[arg.arg] = ref
        for node in _walk_own(method):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            annotation: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value, annotation = node.target, node.value, \
                    node.annotation
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == self_name):
                ref: Optional[str] = None
                if annotation is not None:
                    ref = _annotation_type(annotation)
                elif isinstance(value, ast.Name):
                    ref = param_types.get(value.id)
                elif (isinstance(value, ast.Call)
                      and isinstance(value.func, ast.Name)
                      and value.func.id[:1].isupper()):
                    ref = value.func.id
                elif isinstance(value, ast.ListComp) and isinstance(
                        value.elt, ast.Call) and isinstance(
                        value.elt.func, ast.Name) \
                        and value.elt.func.id[:1].isupper():
                    ref = f"list:{value.elt.func.id}"
                if ref is not None and target.attr not in cls.attr_types:
                    cls.attr_types[target.attr] = ref

    # -- function summaries --------------------------------------------
    def extract(self) -> FileSummary:
        module_fn = self._function_summary(
            "<module>", self.tree, class_name=None, lineno=1,
            module_level=True)
        if (module_fn.calls or module_fn.sinks or module_fn.msg_sites
                or module_fn.order_sites or module_fn.private_access):
            self.summary.functions.append(module_fn)
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.summary.functions.append(self._function_summary(
                    stmt.name, stmt, class_name=None, lineno=stmt.lineno))
            elif isinstance(stmt, ast.ClassDef):
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        self.summary.functions.append(
                            self._function_summary(
                                item.name, item, class_name=stmt.name,
                                lineno=item.lineno))
        return self.summary

    def _function_summary(self, name: str, fn: ast.AST,
                          class_name: Optional[str], lineno: int,
                          module_level: bool = False) -> FunctionSummary:
        qual = (f"{self.module}:{class_name}.{name}" if class_name
                else f"{self.module}:{name}")
        out = FunctionSummary(qualname=qual, name=name, module=self.module,
                              path=self.path, lineno=lineno,
                              class_name=class_name)
        args = getattr(fn, "args", None)
        if args is not None:
            out.params = [a.arg for a in
                          list(args.posonlyargs) + list(args.args)]
        if module_level:
            body: list[ast.stmt] = [
                stmt for stmt in self.tree.body
                if not isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef,
                                         ast.ClassDef))]
            holder = ast.Module(body=body, type_ignores=[])
            walk_nodes = list(_walk_folded(holder))
            own_nodes = list(_walk_own(holder))
        else:
            walk_nodes = list(_walk_folded(fn))
            own_nodes = list(_walk_own(fn))
        walk_nodes.sort(key=lambda n: (getattr(n, "lineno", 0),
                                       getattr(n, "col_offset", 0)))

        type_env = self._type_env(fn, walk_nodes, class_name)
        self._fn_nodes = walk_nodes  # name-spec resolution scope
        call_nodes = [n for n in walk_nodes if isinstance(n, ast.Call)]
        call_ids = {id(n): i for i, n in enumerate(call_nodes)}
        env = self._taint_env(walk_nodes, out.params, call_ids)

        for i, node in enumerate(call_nodes):
            site = self._call_site(i, node, type_env, class_name)
            site.args = [self._taint_of(a, env, out.params, call_ids)
                         for a in node.args]
            site.kwargs = {
                kw.arg: self._taint_of(kw.value, env, out.params, call_ids)
                for kw in node.keywords if kw.arg is not None}
            out.calls.append(site)
            callee = _call_name(node)
            if callee in BOUNDARY_SENDS:
                out.boundary_send = True
            if callee in (MAILBOX_SEND, MAILBOX_REGISTER):
                out.msg_sites.append(self._msg_site(node, callee, env))
            if callee in SINK_FNS:
                self._sink(node, callee, env, out, call_ids)

        returns = EMPTY_TAINT
        ret_specs: list[Optional[tuple[str, str]]] = []
        for node in own_nodes:
            if isinstance(node, ast.Return) and node.value is not None:
                returns = returns.merged(self._taint_of(
                    node.value, env, out.params, call_ids))
                ret_specs.append(_literal_spec(node.value))
        out.returns = returns
        if ret_specs and all(s is not None for s in ret_specs):
            uniq = {s for s in ret_specs if s is not None}
            if len(uniq) == 1:
                out.returns_str_spec = next(iter(uniq))
        self._order_sites(fn if not module_level else self.tree,
                          module_level, out)
        self._private_access(walk_nodes, type_env, class_name, out)
        return out

    # -- local type environment ----------------------------------------
    def _type_env(self, fn: ast.AST, walk_nodes: Sequence[ast.AST],
                  class_name: Optional[str]) -> dict[str, str]:
        env: dict[str, str] = {}
        args = getattr(fn, "args", None)
        self_name = None
        if args is not None:
            params = list(args.posonlyargs) + list(args.args) + \
                list(args.kwonlyargs)
            if class_name is not None and args.args:
                self_name = args.args[0].arg
            for arg in params:
                ref = _annotation_type(arg.annotation)
                if ref is not None:
                    env[arg.arg] = ref
        own_attrs = (self.summary.classes[class_name].attr_types
                     if class_name in self.summary.classes else {})

        def expr_type(expr: ast.expr) -> Optional[str]:
            if isinstance(expr, ast.Name):
                return env.get(expr.id)
            if isinstance(expr, ast.Attribute):
                if (isinstance(expr.value, ast.Name)
                        and expr.value.id == self_name):
                    return own_attrs.get(expr.attr)
                base = expr_type(expr.value)
                if base and ":" not in base:
                    other = self.summary.classes.get(base)
                    if other is not None:
                        return other.attr_types.get(expr.attr)
                return None
            if isinstance(expr, ast.Subscript):
                return _element_type(expr_type(expr.value))
            if isinstance(expr, ast.Call):
                func = expr.func
                if isinstance(func, ast.Name) and func.id[:1].isupper():
                    return func.id
                return None
            if isinstance(expr, ast.ListComp) and isinstance(
                    expr.elt, ast.Call) and isinstance(
                    expr.elt.func, ast.Name) \
                    and expr.elt.func.id[:1].isupper():
                return f"list:{expr.elt.func.id}"
            return None

        for _ in range(3):          # a couple of passes settles chains
            changed = False
            for node in walk_nodes:
                if isinstance(node, ast.AnnAssign) and isinstance(
                        node.target, ast.Name):
                    ref = _annotation_type(node.annotation)
                    if ref is not None and env.get(node.target.id) != ref:
                        env[node.target.id] = ref
                        changed = True
                elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name):
                    ref = expr_type(node.value)
                    if ref is not None and env.get(
                            node.targets[0].id) != ref:
                        env[node.targets[0].id] = ref
                        changed = True
                elif isinstance(node, (ast.For, ast.AsyncFor)) and \
                        isinstance(node.target, ast.Name):
                    ref = _element_type(expr_type(node.iter))
                    if ref is not None and env.get(node.target.id) != ref:
                        env[node.target.id] = ref
                        changed = True
            if not changed:
                break
        self._expr_type = expr_type  # reused by _private_access
        return env

    # -- taint ----------------------------------------------------------
    def _taint_env(self, walk_nodes: Sequence[ast.AST],
                   params: Sequence[str],
                   call_ids: dict[int, int]) -> dict[str, Taint]:
        env: dict[str, Taint] = {}
        for _ in range(10):
            changed = False
            for node in walk_nodes:
                target: Optional[str] = None
                value: Optional[ast.expr] = None
                augment = False
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name):
                    target, value = node.targets[0].id, node.value
                elif isinstance(node, ast.AnnAssign) and isinstance(
                        node.target, ast.Name) and node.value is not None:
                    target, value = node.target.id, node.value
                elif isinstance(node, ast.AugAssign) and isinstance(
                        node.target, ast.Name):
                    target, value, augment = node.target.id, node.value, True
                if target is None or value is None:
                    continue
                new = self._taint_of(value, env, params, call_ids)
                if augment:
                    new = new.merged(env.get(target, EMPTY_TAINT))
                if new != env.get(target, EMPTY_TAINT):
                    env[target] = new.merged(env.get(target, EMPTY_TAINT))
                    changed = True
            if not changed:
                break
        return env

    def _taint_of(self, expr: ast.expr, env: dict[str, Taint],
                  params: Sequence[str],
                  call_ids: dict[int, int]) -> Taint:
        if isinstance(expr, ast.Name):
            if expr.id in env:
                return env[expr.id]
            if expr.id in params:
                return Taint(params=(expr.id,))
            return EMPTY_TAINT
        if isinstance(expr, ast.Constant):
            if isinstance(expr.value, float):
                return Taint(sources=(f"float literal {expr.value!r}",))
            return EMPTY_TAINT
        if isinstance(expr, ast.BinOp):
            if isinstance(expr.op, ast.Div):
                return Taint(sources=("true division (/)",))
            if isinstance(expr.op, ast.FloorDiv):
                return EMPTY_TAINT  # integer-laundering, as in SIM001
            return self._taint_of(expr.left, env, params, call_ids).merged(
                self._taint_of(expr.right, env, params, call_ids))
        if isinstance(expr, ast.UnaryOp):
            return self._taint_of(expr.operand, env, params, call_ids)
        if isinstance(expr, ast.IfExp):
            return self._taint_of(expr.body, env, params, call_ids).merged(
                self._taint_of(expr.orelse, env, params, call_ids))
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            out = EMPTY_TAINT
            for elt in expr.elts:
                out = out.merged(self._taint_of(elt, env, params, call_ids))
            return out
        if isinstance(expr, ast.Subscript):
            return self._taint_of(expr.value, env, params, call_ids)
        if isinstance(expr, ast.Starred):
            return self._taint_of(expr.value, env, params, call_ids)
        if isinstance(expr, ast.Call):
            return self._call_taint(expr, env, params, call_ids)
        if isinstance(expr, (ast.BoolOp, ast.Compare)):
            return EMPTY_TAINT
        return EMPTY_TAINT

    def _call_taint(self, expr: ast.Call, env: dict[str, Taint],
                    params: Sequence[str],
                    call_ids: dict[int, int]) -> Taint:
        name = _call_name(expr)
        if name in _SANITIZERS:
            return EMPTY_TAINT
        if name == "float":
            return Taint(sources=("float() cast",))
        func = expr.func
        if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name):
            mod = self.summary.import_modules.get(func.value.id)
            if mod == "time":
                return Taint(sources=(f"wall-clock time.{func.attr}()",))
            if mod == "math":
                return Taint(sources=(f"math.{func.attr}() float result",))
        if name in _PROPAGATORS:
            out = EMPTY_TAINT
            for arg in expr.args:
                out = out.merged(self._taint_of(arg, env, params, call_ids))
            return out
        site_id = call_ids.get(id(expr))
        if site_id is not None and self._maybe_project_call(expr):
            return Taint(calls=(site_id,))
        return EMPTY_TAINT

    def _maybe_project_call(self, expr: ast.Call) -> bool:
        """Cheap triage: could this call resolve to a project function?
        (Attribute calls on unresolved receivers and known non-project
        builtins cannot; they stay opaque and untainted.)"""
        func = expr.func
        if isinstance(func, ast.Name):
            return True
        if isinstance(func, ast.Attribute):
            return isinstance(func.value, (ast.Name, ast.Attribute))
        return False

    # -- call sites ------------------------------------------------------
    def _call_site(self, index: int, node: ast.Call,
                   type_env: dict[str, str],
                   class_name: Optional[str]) -> CallSite:
        func = node.func
        line, col = node.lineno, node.col_offset + 1
        if isinstance(func, ast.Name):
            return CallSite(id=index, line=line, col=col, kind="name",
                            name=func.id)
        if isinstance(func, ast.Attribute):
            recv = func.value
            if isinstance(recv, ast.Name):
                if class_name is not None and recv.id == "self":
                    return CallSite(id=index, line=line, col=col,
                                    kind="self", name=func.attr,
                                    recv=class_name)
                mod = self.summary.import_modules.get(recv.id)
                if mod is not None:
                    return CallSite(id=index, line=line, col=col,
                                    kind="name",
                                    name=f"{mod}.{func.attr}")
                return CallSite(id=index, line=line, col=col,
                                kind="method", name=func.attr,
                                recv=type_env.get(recv.id))
            recv_type = self._expr_type(recv)
            if recv_type is not None and ":" in recv_type:
                recv_type = None
            return CallSite(id=index, line=line, col=col, kind="method",
                            name=func.attr, recv=recv_type)
        return CallSite(id=index, line=line, col=col, kind="method",
                        name="<dynamic>")

    # -- message sites ---------------------------------------------------
    def _msg_site(self, node: ast.Call, api: str,
                  env: dict[str, Taint]) -> MsgSite:
        name_arg: Optional[ast.expr] = node.args[0] if node.args else None
        for kw in node.keywords:
            if kw.arg in ("name", "mailbox") and name_arg is None:
                name_arg = kw.value
        kind, value = self._name_spec(name_arg)
        handler: Optional[dict[str, str]] = None
        if api == MAILBOX_REGISTER:
            handler_arg: Optional[ast.expr] = (node.args[1]
                                               if len(node.args) > 1
                                               else None)
            for kw in node.keywords:
                if kw.arg == "handler" and handler_arg is None:
                    handler_arg = kw.value
            handler = self._handler_hint(handler_arg)
        return MsgSite(api="send" if api == MAILBOX_SEND else "register",
                       line=node.lineno, col=node.col_offset + 1,
                       spec_kind=kind, spec_value=value, handler=handler)

    def _name_spec(self, expr: Optional[ast.expr],
                   depth: int = 0) -> tuple[str, str]:
        if expr is None or depth > 4:
            return "dynamic", "<missing>"
        literal = _literal_spec(expr)
        if literal is not None:
            return literal
        if isinstance(expr, ast.Name):
            if expr.id in self.summary.constants:
                return "exact", self.summary.constants[expr.id]
            assigned = self._local_str_assignment(expr.id)
            if assigned is not None:
                return self._name_spec(assigned, depth + 1)
            return "ref", expr.id
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                return "ref_call", func.id
            if isinstance(func, ast.Attribute):
                return "ref_call", func.attr
        return "dynamic", ast.dump(expr)[:60]

    def _local_str_assignment(self, name: str) -> Optional[ast.expr]:
        """The unique assignment to ``name`` within the function being
        summarized (closures assign the mailbox name right outside the
        nested sender, so the folded subtree sees it), falling back to
        a unique file-wide assignment."""
        def unique_in(nodes: Iterator[ast.AST]) -> Optional[ast.expr]:
            found: list[ast.expr] = []
            for node in nodes:
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name) \
                        and node.targets[0].id == name:
                    found.append(node.value)
            return found[0] if len(found) == 1 else None

        local = unique_in(iter(self._fn_nodes))
        if local is not None:
            return local
        return unique_in(ast.walk(self.tree))

    def _handler_hint(self,
                      expr: Optional[ast.expr]) -> Optional[dict[str, str]]:
        if expr is None:
            return None
        if isinstance(expr, ast.Name):
            return {"kind": "name", "name": expr.id}
        if isinstance(expr, ast.Attribute):
            return {"kind": "method", "name": expr.attr}
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                return {"kind": "call", "name": func.id}
            if isinstance(func, ast.Attribute):
                return {"kind": "call", "name": func.attr}
        return {"kind": "opaque", "name": ""}

    # -- sinks -----------------------------------------------------------
    def _sink(self, node: ast.Call, callee: str, env: dict[str, Taint],
              out: FunctionSummary, call_ids: dict[int, int]) -> None:
        time_arg: Optional[ast.expr] = None
        if node.args:
            time_arg = node.args[0]
        else:
            for kw in node.keywords:
                if kw.arg in ("delay", "time"):
                    time_arg = kw.value
                    break
        if time_arg is None:
            return
        taint = self._taint_of(time_arg, env, out.params, call_ids)
        direct = _direct_float(time_arg, self.summary.import_modules)
        out.sinks.append(Sink(line=node.lineno, col=node.col_offset + 1,
                              fn=callee, taint=taint, direct=direct))

    # -- ordering sites --------------------------------------------------
    def _order_sites(self, root: ast.AST, module_level: bool,
                     out: FunctionSummary) -> None:
        # Reuse the per-file DET003/DET004 scanners on this function's
        # subtree; the flow layer promotes them to MSG002 only when the
        # function feeds a cross-boundary send.
        from repro.statics.engine import FileContext
        from repro.statics.rules import (HashIdOrderingRule,
                                         UnorderedIterationRule)
        from repro.statics.findings import Finding
        ctx = FileContext(path=self.path, source=self.source,
                          tree=self.tree, scope="flow",
                          lines=self.source.splitlines())
        raw: list[Finding] = []
        UnorderedIterationRule()._scan(root, ctx, raw)
        HashIdOrderingRule()._scan(root, ctx, raw)
        if module_level:
            # The module pseudo-function's subtree is the whole tree;
            # function bodies report their own sites.
            fn_lines = set()
            for stmt in self.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    end = getattr(stmt, "end_lineno", stmt.lineno)
                    fn_lines.update(range(stmt.lineno, end + 1))
            raw = [f for f in raw if f.line not in fn_lines]
        for finding in raw:
            rule = ("DET003" if finding.rule == "DET003" else "DET004")
            out.order_sites.append(OrderSite(
                rule=rule, line=finding.line, col=finding.col,
                desc=finding.message))

    # -- private access --------------------------------------------------
    def _private_access(self, walk_nodes: Sequence[ast.AST],
                        type_env: dict[str, str],
                        class_name: Optional[str],
                        out: FunctionSummary) -> None:
        def recv_of(expr: ast.expr) -> Optional[str]:
            if isinstance(expr, ast.Name):
                if expr.id == "self":
                    return None
                ref = type_env.get(expr.id)
                return ref if ref and ":" not in ref else None
            if isinstance(expr, (ast.Attribute, ast.Subscript)):
                ref = self._expr_type(expr)
                if ref is None:
                    return None
                return ref if ":" not in ref else None
            return None

        def is_private(member: str) -> bool:
            return member.startswith("_") and not member.startswith("__")

        for node in walk_nodes:
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    base = target
                    while isinstance(base, ast.Subscript):
                        base = base.value
                    if isinstance(base, ast.Attribute) and is_private(
                            base.attr):
                        recv = recv_of(base.value)
                        if recv is not None:
                            out.private_access.append(AccessSite(
                                line=base.lineno,
                                col=base.col_offset + 1,
                                recv_type=recv, member=base.attr,
                                mode="store"))
            elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute):
                func = node.func
                if is_private(func.attr):
                    recv = recv_of(func.value)
                    if recv is not None:
                        out.private_access.append(AccessSite(
                            line=node.lineno, col=node.col_offset + 1,
                            recv_type=recv, member=func.attr, mode="call"))
                elif (func.attr in ("append", "extend", "add", "update",
                                    "remove", "discard", "pop", "clear",
                                    "insert")
                      and isinstance(func.value, ast.Attribute)
                      and is_private(func.value.attr)):
                    recv = recv_of(func.value.value)
                    if recv is not None:
                        out.private_access.append(AccessSite(
                            line=node.lineno, col=node.col_offset + 1,
                            recv_type=recv, member=func.value.attr,
                            mode="store"))


def _call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _literal_spec(expr: ast.expr) -> Optional[tuple[str, str]]:
    """Constant string → exact; f-string with a constant prefix and at
    least one interpolation → scheme(prefix)."""
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return "exact", expr.value
    if isinstance(expr, ast.JoinedStr):
        has_format = any(isinstance(v, ast.FormattedValue)
                         for v in expr.values)
        if not has_format:
            return None
        first = expr.values[0] if expr.values else None
        if (isinstance(first, ast.Constant)
                and isinstance(first.value, str) and first.value):
            return "scheme", first.value
        return "dynamic", "<f-string>"
    return None


def _direct_float(expr: ast.expr, import_modules: dict[str, str]) -> bool:
    """SIM001's expression-local float test (that rule's findings are
    not re-reported interprocedurally)."""
    for node in ast.walk(expr):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return True
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id == "float":
                return True
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and import_modules.get(func.value.id) == "time"):
                return True
    return False


# ----------------------------------------------------------------------
# Entry points + cache
# ----------------------------------------------------------------------


def content_key(source: str) -> str:
    digest = hashlib.sha256()
    digest.update(f"v{SUMMARY_VERSION}\n".encode())
    digest.update(source.encode("utf-8", errors="replace"))
    return digest.hexdigest()


def summarize_source(source: str, path: str) -> FileSummary:
    """Summarize one source blob (no cache)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return FileSummary(path=path, module=module_name_of(path),
                           scope=scope_of(path), sha=content_key(source),
                           parse_error=f"{exc.msg} (line {exc.lineno})")
    return _Extractor(path, source, tree).extract()


def summarize_file(path: str,
                   cache_dir: Optional[str] = None) -> FileSummary:
    """Summarize ``path``, round-tripping through the content-keyed
    cache when ``cache_dir`` is given.  A cache hit skips the parse
    entirely; a stale or corrupt entry is recomputed and rewritten."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    key = content_key(source)
    cache_path = (os.path.join(cache_dir, f"{key}.json")
                  if cache_dir is not None else None)
    if cache_path is not None and os.path.exists(cache_path):
        try:
            with open(cache_path, encoding="utf-8") as handle:
                data = json.load(handle)
            if data.get("version") == SUMMARY_VERSION \
                    and data.get("path") == path:
                return FileSummary.from_dict(data)
        except (OSError, ValueError, KeyError, TypeError):
            pass  # fall through to recompute
    summary = summarize_source(source, path)
    if cache_path is not None:
        os.makedirs(cache_dir or ".", exist_ok=True)
        tmp = f"{cache_path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(summary.to_dict(), handle)
            os.replace(tmp, cache_path)
        except OSError:
            pass  # cache write failure is never an analysis failure
    return summary
