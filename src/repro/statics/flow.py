"""The whole-program rule families (``repro statics --flow``).

Four families run over the linked :class:`~repro.statics.graphs.Program`:

``FLOW001``
    Cross-shard race detector.  A class owning a mailbox transport
    (defines/inherits ``register_mailbox`` *and* ``send_ctrl``) is an
    *actor*; its underscore-private state may be touched only by its
    own methods or by code in its defining module (the wiring that
    constructs it).  Any other store/call is state reached without a
    mailbox or the total-order merge — exactly the race the sharded
    runtime's determinism proof assumes away.

``MSG001``
    Dead-letter check.  Every statically-known mailbox name sent to
    must have a matching registration and vice versa; constant names
    match exactly, f-string names (``f"agg:{switch}"``) match as
    prefix *schemes*.

``MSG002``
    Nondeterministic ordering on merge/flush paths.  The per-file
    DET003/DET004 site scanners, promoted interprocedurally: a
    set/dict-ordered iteration or ``hash()``/``id()`` sort key inside
    any function whose call-graph closure reaches a cross-boundary
    send (``send_ctrl``/``send_up``/``forward_init``) is flagged in
    *every* scope, because its output feeds another actor.

``DET005``
    Interprocedural float-time taint — SIM001 across call boundaries
    (:mod:`repro.statics.taint`).

Unlike the per-file pass, ``--flow`` analyses its input paths as *one
program*: resolution quality depends on seeing callee and caller
together, so CI runs it over the four actor packages in one invocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.statics.engine import Report, iter_python_files
from repro.statics.findings import Finding
from repro.statics.graphs import Program
from repro.statics.pragmas import PragmaTable, parse_pragmas
from repro.statics.project import (FileSummary, content_key,
                                   summarize_source)

#: Default analysis roots when ``--flow`` is given no paths: the flow
#: families model production actor wiring, so ``tests`` is not a
#: default root (fixtures and unit tests poke internals deliberately).
FLOW_DEFAULT_PATHS = ("src",)


@dataclass(frozen=True)
class FlowRuleInfo:
    """Registry entry for one whole-program rule family."""

    id: str
    title: str
    hint: str


FLOW_RULES: tuple[FlowRuleInfo, ...] = (
    FlowRuleInfo(
        id="FLOW001",
        title="cross-actor access to private actor state",
        hint="actors exchange state through registered mailboxes and "
             "the total-order merge, never by reaching into another "
             "actor's privates (docs/DETERMINISM.md#whole-program-rules)"),
    FlowRuleInfo(
        id="MSG001",
        title="mailbox sent to without registration (or vice versa)",
        hint="pair every send_ctrl(name) with a register_mailbox(name); "
             "f-string names match as prefix schemes"),
    FlowRuleInfo(
        id="MSG002",
        title="nondeterministic ordering feeding a cross-boundary send",
        hint="data crossing an actor boundary must be ordered by "
             "deterministic keys (sorted tuples), not set/dict/hash "
             "order"),
    FlowRuleInfo(
        id="DET005",
        title="interprocedural float taint reaching a time argument",
        hint="simulated time is integer ns end to end; convert with "
             "exact_ns at the edge, before the value starts flowing "
             "toward schedule()"),
)

FLOW_RULE_IDS: tuple[str, ...] = tuple(rule.id for rule in FLOW_RULES)
_HINTS = {rule.id: rule.hint for rule in FLOW_RULES}


# ----------------------------------------------------------------------
# Program loading
# ----------------------------------------------------------------------


def load_program(paths: tuple[str, ...],
                 cache_dir: Optional[str] = None
                 ) -> tuple[Program, dict[str, str]]:
    """Summarize every python file under ``paths`` (through the
    content-keyed cache when ``cache_dir`` is set) and link them.
    Returns the program plus each file's source (for pragma scanning —
    the source was already read to compute the cache key, so this costs
    nothing extra)."""
    import json
    import os
    summaries: list[FileSummary] = []
    sources: dict[str, str] = {}
    for path in iter_python_files(paths):
        with open(path, encoding="utf-8") as handle:
            source = handle.read()
        sources[path] = source
        summary: Optional[FileSummary] = None
        cache_path: Optional[str] = None
        if cache_dir is not None:
            cache_path = os.path.join(cache_dir,
                                      f"{content_key(source)}.json")
            if os.path.exists(cache_path):
                try:
                    with open(cache_path, encoding="utf-8") as handle:
                        data = json.load(handle)
                    if data.get("path") == path:
                        summary = FileSummary.from_dict(data)
                except (OSError, ValueError, KeyError, TypeError):
                    summary = None
        if summary is None:
            summary = summarize_source(source, path)
            if cache_path is not None:
                os.makedirs(cache_dir or ".", exist_ok=True)
                tmp = f"{cache_path}.tmp.{os.getpid()}"
                try:
                    with open(tmp, "w", encoding="utf-8") as handle:
                        json.dump(summary.to_dict(), handle)
                    os.replace(tmp, cache_path)
                except OSError:
                    pass
        summaries.append(summary)
    return Program(summaries), sources


# ----------------------------------------------------------------------
# Rule families
# ----------------------------------------------------------------------


def _finding(rule: str, path: str, line: int, col: int,
             message: str) -> Finding:
    return Finding(rule=rule, path=path, line=line, col=col,
                   message=message, hint=_HINTS[rule])


def _flow001(program: Program) -> list[Finding]:
    out: list[Finding] = []
    for file in program.files:
        for fn in file.functions:
            own_class = (program.classes.get((fn.module, fn.class_name))
                         if fn.class_name is not None else None)
            for access in fn.private_access:
                target = program.resolve_class(fn.module,
                                               access.recv_type)
                if target is None or not program.is_actor(target):
                    continue
                if target.module == fn.module:
                    continue    # the actor's own module wires it up
                if own_class is not None and program.related(
                        own_class, target):
                    continue
                verb = ("stores to" if access.mode == "store"
                        else "calls private method")
                out.append(_finding(
                    "FLOW001", fn.path, access.line, access.col,
                    f"{fn.qualname} {verb} "
                    f"{access.recv_type}.{access.member} — private "
                    f"state of actor {target.module}:{target.name} — "
                    f"without a mailbox hop"))
    return out


def _msg001(program: Program) -> list[Finding]:
    sends: list[tuple[str, str, str, int, int]] = []
    regs: list[tuple[str, str, str, int, int]] = []
    for fn, site in program.iter_msg_sites():
        kind, value = program.resolved_spec(fn, site)
        if kind == "dynamic":
            continue            # unknowable statically; tests cover it
        row = (kind, value, fn.path, site.line, site.col)
        (sends if site.api == "send" else regs).append(row)

    def matches(kind: str, value: str, pool:
                list[tuple[str, str, str, int, int]]) -> bool:
        for other_kind, other_value, _, _, _ in pool:
            if kind == "exact" and other_kind == "exact":
                if value == other_value:
                    return True
            elif kind == "exact" and other_kind == "scheme":
                if value.startswith(other_value):
                    return True
            elif kind == "scheme" and other_kind == "exact":
                if other_value.startswith(value):
                    return True
            elif kind == "scheme" and other_kind == "scheme":
                if value == other_value or \
                        value.startswith(other_value) or \
                        other_value.startswith(value):
                    return True
        return False

    out: list[Finding] = []
    for kind, value, path, line, col in sends:
        if not matches(kind, value, regs):
            what = (f"mailbox {value!r}" if kind == "exact"
                    else f"mailbox scheme {value!r}*")
            out.append(_finding(
                "MSG001", path, line, col,
                f"send_ctrl to {what} has no matching "
                f"register_mailbox anywhere in the program "
                f"(dead letter)"))
    for kind, value, path, line, col in regs:
        if not matches(kind, value, sends):
            what = (f"mailbox {value!r}" if kind == "exact"
                    else f"mailbox scheme {value!r}*")
            out.append(_finding(
                "MSG001", path, line, col,
                f"register_mailbox for {what} is never sent to "
                f"(dead mailbox)"))
    return out


def _msg002(program: Program) -> list[Finding]:
    out: list[Finding] = []
    for file in program.files:
        for fn in file.functions:
            if not fn.order_sites:
                continue
            if not program.reaches_boundary_send(fn):
                continue
            for site in fn.order_sites:
                out.append(_finding(
                    "MSG002", fn.path, site.line, site.col,
                    f"{site.desc} in {fn.qualname}, which feeds a "
                    f"cross-boundary send ({site.rule} "
                    f"interprocedurally)"))
    return out


def _det005(program: Program) -> list[Finding]:
    from repro.statics.taint import TaintAnalysis
    analysis = TaintAnalysis(program)
    out: list[Finding] = []
    for hit in analysis.sink_findings():
        via = (f" via {' -> '.join(hit.chain)}" if hit.chain else "")
        out.append(_finding(
            "DET005", hit.path, hit.line, hit.col,
            f"float-tainted value can reach the {hit.sink_fn}() time "
            f"argument in {hit.fn_qualname}{via}: "
            f"{'; '.join(hit.sources)}"))
    return out


_FAMILY_RUNNERS = {
    "FLOW001": _flow001,
    "MSG001": _msg001,
    "MSG002": _msg002,
    "DET005": _det005,
}


def collect_findings(program: Program,
                     rule_ids: Optional[set[str]] = None) -> list[Finding]:
    """Run the requested families (all four by default)."""
    active = (set(FLOW_RULE_IDS) if rule_ids is None
              else rule_ids & set(FLOW_RULE_IDS))
    out: list[Finding] = []
    for rule_id in FLOW_RULE_IDS:
        if rule_id in active:
            out.extend(_FAMILY_RUNNERS[rule_id](program))
    return out


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def run_flow(paths: tuple[str, ...], *,
             cache_dir: Optional[str] = None,
             rule_ids: Optional[set[str]] = None,
             report_unused_pragmas: bool = True,
             known_rules: Optional[set[str]] = None
             ) -> tuple[Report, Program]:
    """Whole-program analysis over ``paths`` as one linked program.

    Pragma semantics mirror the per-file engine: an
    ``# statics: allow[FLOW001] reason`` on (or above) the finding line
    suppresses it; unused-pragma auditing covers only the *active* flow
    families, so per-file-rule pragmas in the same file are untouched.
    """
    program, sources = load_program(paths, cache_dir)
    active = (set(FLOW_RULE_IDS) if rule_ids is None
              else rule_ids & set(FLOW_RULE_IDS))
    known = set(known_rules) if known_rules is not None else set(
        FLOW_RULE_IDS)
    findings = collect_findings(program, active)
    by_path: dict[str, list[Finding]] = {}
    for finding in findings:
        by_path.setdefault(finding.path, []).append(finding)
    report = Report(files_checked=len(program.files))
    for path in sorted(sources):
        source = sources[path]
        table: Optional[PragmaTable] = None
        if "statics:" in source:
            table = parse_pragmas(source, path, known)
        for finding in by_path.get(path, ()):
            if table is not None and table.suppresses(finding):
                report.suppressed += 1
            else:
                report.findings.append(finding)
        if table is not None and report_unused_pragmas:
            report.findings.extend(
                table.unused_findings(path, active_rules=active))
    for summary in program.files:
        if summary.parse_error is not None:
            report.findings.append(Finding(
                rule="PARSE001", path=summary.path, line=1, col=1,
                message=f"file does not parse: {summary.parse_error}",
                hint="statics needs a syntactically valid tree"))
    report.findings.sort(key=Finding.sort_key)
    return report, program
