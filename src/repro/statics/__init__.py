"""Determinism & simulation-invariant static analysis.

An AST-based rule engine (``repro statics`` / ``make statics``) that
encodes this repository's determinism contracts as pre-execution checks:
seeded-RNG-only simulation layers, no wall-clock outside runtime/perf,
no unordered-set iteration in the scheduling core, no
PYTHONHASHSEED-dependent ordering keys, integer-only simulation time,
``__slots__`` integrity, and pure ``@trial`` functions.  See
docs/DETERMINISM.md for the contract and each rule's rationale, and
``# statics: allow[RULE] reason`` for the suppression syntax.
"""

from repro.statics.engine import (FileContext, Report, Rule, check_file,
                                  check_source, iter_python_files,
                                  run_paths, scope_of)
from repro.statics.findings import Finding
from repro.statics.flow import (FLOW_RULE_IDS, FLOW_RULES, load_program,
                                run_flow)
from repro.statics.graphs import Program
from repro.statics.pragmas import Pragma, PragmaTable, parse_pragmas
from repro.statics.rules import ALL_RULE_IDS, ALL_RULES

__all__ = [
    "ALL_RULES",
    "ALL_RULE_IDS",
    "FLOW_RULES",
    "FLOW_RULE_IDS",
    "Program",
    "load_program",
    "run_flow",
    "FileContext",
    "Finding",
    "Pragma",
    "PragmaTable",
    "Report",
    "Rule",
    "check_file",
    "check_source",
    "iter_python_files",
    "parse_pragmas",
    "run_paths",
    "scope_of",
]
