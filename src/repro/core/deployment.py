"""Deployment builder: enable Speedlight on a simulated network.

:class:`SpeedlightDeployment` performs the wiring an operator (plus the
P4 compiler) performs on a real network:

* instantiate the chosen metric counter on every processing unit of
  every participating switch;
* attach a snapshot agent (hardware-constrained
  :class:`~repro.core.dataplane.SpeedlightUnit` by default, or the
  idealised :class:`~repro.core.ideal.IdealUnit` for ablations) to each
  unit;
* start one :class:`~repro.core.control_plane.SwitchControlPlane` per
  switch, registered with the shared PTP service's clock for that
  switch;
* create the :class:`~repro.core.observer.SnapshotObserver` and connect
  record shipping over the management plane;
* compute each unit's **gating channels** (whose Last Seen entries gate
  completion when channel state is collected) from the topology, and
  configure header stripping at deployment boundaries (partial
  deployment, §10).

Gating defaults: an ingress unit gates on its external channel only when
the link peer is a snapshot-enabled switch (host channels carry no
tagged in-flight packets, so they are excluded — the §6 "removal of
non-utilized upstream neighbors" knob, applied automatically); an egress
unit gates on every connected ingress port of its switch except its own
(a packet never hairpins out the port it arrived on).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from collections.abc import Callable
from typing import Optional

from repro.core.aggregation import (AggregateMessage, AggregationAgent,
                                    AggregationConfig, AggregationFabric,
                                    AggregationTree, RelayChannel)
from repro.core.control_plane import (ControlPlaneConfig, SwitchControlPlane,
                                      UnitSnapshotRecord)
from repro.core.dataplane import SpeedlightUnit
from repro.core.ideal import IdealUnit
from repro.core.ids import IdSpace
from repro.core.observer import ObserverConfig, SnapshotObserver
from repro.core.recovery import RecoveryPolicy
from repro.counters import (FibVersionCounter, QueueDepthCounter,
                            QueueHighWatermark, make_counter)
from repro.sim.network import Network
from repro.sim.packet import Packet
from repro.sim.switch import Direction, Switch, UnitId
from repro.topology.graph import NodeKind

#: Metrics that are gauges: channel state (in-flight accumulation) has
#: no meaning for them and the deployment rejects the combination.
GAUGE_METRICS = frozenset({"queue_depth", "queue_watermark",
                           "ewma_interarrival", "ewma_packet_rate",
                           "fib_version"})

#: Per-metric contribution of one in-flight packet to channel state.
_IN_FLIGHT_FNS: dict[str, Callable[[Packet], int]] = {
    "packet_count": lambda pkt: 1,
    "byte_count": lambda pkt: pkt.size_bytes,
}


def _make_flat_sink(name: str, cp: SwitchControlPlane, send_root):
    """Flat-modeled (degree=0) record sink: every unit record crosses
    the observer intake as its own single-record message — the honest
    serial cost of the paper's unicast observer."""

    def ship(record: UnitSnapshotRecord) -> None:
        send_root(AggregateMessage(
            source=name, epoch=record.epoch, records=[record],
            min_finalized=cp.min_finalized_epoch(), complete=False))

    return ship


@dataclass
class DeploymentConfig:
    """Configuration of a Speedlight deployment."""

    #: Metric name from :data:`repro.counters.COUNTER_REGISTRY`.
    metric: str = "packet_count"
    #: Collect channel state (in-flight packets)?  Requires an
    #: accumulator metric.
    channel_state: bool = False
    #: Snapshot-ID register ceiling; None disables wraparound (Table 1's
    #: plain "Packet Count" variant).
    max_sid: Optional[int] = 255
    #: Participating switches; None means all (partial deployment, §10).
    switches: Optional[list[str]] = None
    #: Use the idealised Figure 3 units instead of Speedlight's
    #: hardware-constrained ones (ablation only; forces unbounded IDs).
    ideal_units: bool = False
    #: Gate ingress completion on host-facing channels too (needs
    #: host-driven traffic on every such port to complete).
    gate_host_channels: bool = False
    #: CoS classes whose sub-channels gate completion (None = all lanes
    #: the switches are configured with).  Classes that carry no traffic
    #: stall channel-state completion until probes or re-initiation cover
    #: them, so operators running traffic in a subset of classes should
    #: list that subset here (§6's neighbor-exclusion knob, per class).
    cos_classes: Optional[list[int]] = None
    control_plane: ControlPlaneConfig = field(default_factory=ControlPlaneConfig)
    observer: ObserverConfig = field(default_factory=ObserverConfig)
    #: Hierarchical snapshot fabric (repro.core.aggregation).  None — the
    #: default — wires nothing and keeps the flat unicast event stream
    #: bit-identical; ``AggregationConfig(degree=0)`` is the flat-modeled
    #: baseline (observer intake pays per-record service), ``degree>=1``
    #: builds the aggregation tree.
    aggregation: Optional[AggregationConfig] = None
    #: Recovery policy overlay: when set, its §6 recovery fields are
    #: applied over ``control_plane``/``observer`` (which keep supplying
    #: every non-recovery field, e.g. transport or lead time).
    recovery: Optional[RecoveryPolicy] = None


class SpeedlightDeployment:
    """A fully wired Speedlight instance on a simulated network."""

    def __init__(self, network: Network,
                 config: Optional[DeploymentConfig] = None,
                 **config_kwargs) -> None:
        if config is None:
            config = DeploymentConfig(**config_kwargs)
        elif config_kwargs:
            raise TypeError("pass either a DeploymentConfig or kwargs, not both")
        if config.recovery is not None:
            config = replace(
                config,
                control_plane=config.recovery.control_plane_config(
                    config.control_plane),
                observer=config.recovery.observer_config(config.observer))
        self.network = network
        self.config = config
        if config.channel_state and config.metric in GAUGE_METRICS:
            raise ValueError(
                f"metric {config.metric!r} is a gauge; channel state is "
                "meaningless for gauges — snapshot it without channel state "
                "(the paper's queue-depth example, §4.2)")
        if config.channel_state and config.metric not in _IN_FLIGHT_FNS:
            raise ValueError(
                f"metric {config.metric!r} has no in-flight contribution "
                "rule; register one or disable channel state")
        self.ids = IdSpace(None if config.ideal_units else config.max_sid)
        self.agents: dict[UnitId, object] = {}
        self.control_planes: dict[str, SwitchControlPlane] = {}
        self.observer = SnapshotObserver(network.sim, network.mgmt, self.ids,
                                         config.observer)
        #: Per-switch record sinks, consulted *at ship time* by the
        #: closures :meth:`_make_shipper` builds.  Aggregation wiring
        #: (which needs the control planes to exist first) populates it
        #: after :meth:`_deploy`; with no aggregation it stays empty and
        #: every shipper takes the legacy direct-to-observer path.
        self._record_sinks: dict[str, Callable[[UnitSnapshotRecord], None]] = {}
        self.aggregation: Optional[AggregationFabric] = None
        #: Armed update driver (:mod:`repro.updates.driver`), attached by
        #: :func:`repro.core.deploy` when an update plan is given; None —
        #: the default — means no coordinated update is scheduled.
        self.update_driver = None
        self._deploy()
        self._wire_aggregation()
        network.refresh_header_stripping()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def switch_names(self) -> list[str]:
        if self.config.switches is not None:
            return list(self.config.switches)
        return sorted(self.network.switches)

    def _deploy(self) -> None:
        for name in self.switch_names:
            self._deploy_switch(name)
        # Gating depends on which peers are enabled, so compute after all
        # switches have their agents attached.
        for name in self.switch_names:
            self._register_units(name)

    def _deploy_switch(self, name: str) -> None:
        switch = self.network.switch(name)
        cp = SwitchControlPlane(
            switch, self.network.ptp.clocks[name], self.ids,
            channel_state=self.config.channel_state,
            config=self.config.control_plane,
            ship=self._make_shipper(name),
            ideal_dataplane=self.config.ideal_units)
        self.control_planes[name] = cp
        for port_index in switch.connected_ports():
            port = switch.ports[port_index]
            for unit in (port.ingress, port.egress):
                counter = self._make_counter(unit)
                unit.counters.add(self.config.metric, counter)
                agent = self._make_agent(unit, counter)
                unit.snapshot_agent = agent
                self.agents[unit.unit_id] = agent

    def _make_counter(self, unit):
        if self.config.metric == "queue_depth":
            if unit.unit_id.direction is Direction.EGRESS:
                return QueueDepthCounter.for_egress_unit(unit)
            # Ingress units have no queue; a constant-zero gauge keeps
            # the record schema uniform across directions.
            return QueueDepthCounter(lambda: 0)
        if self.config.metric == "queue_watermark":
            if unit.unit_id.direction is Direction.EGRESS:
                return QueueHighWatermark.for_egress_unit(unit)
            return QueueHighWatermark(lambda: 0)
        if self.config.metric == "fib_version":
            if unit.unit_id.direction is Direction.INGRESS:
                return FibVersionCounter.for_ingress_unit(unit)
            # Forwarding decisions happen at ingress only.
            return FibVersionCounter(lambda: 0)
        return make_counter(self.config.metric)

    def _make_agent(self, unit, counter):
        switch = unit.switch
        if self.config.ideal_units:
            return IdealUnit(unit.unit_id, counter.read,
                             channel_state=self.config.channel_state,
                             notify=switch.send_notification,
                             in_flight_value_fn=self._in_flight_fn())
        return SpeedlightUnit(unit.unit_id, self.ids, counter.read,
                              channel_state=self.config.channel_state,
                              notify=switch.send_notification,
                              in_flight_value_fn=self._in_flight_fn())

    def _in_flight_fn(self) -> Optional[Callable[[Packet], int]]:
        return _IN_FLIGHT_FNS.get(self.config.metric)

    def _make_shipper(self, name: str) -> Callable[[UnitSnapshotRecord], None]:
        observer = self.observer
        mgmt = self.network.mgmt
        sinks = self._record_sinks

        def ship(record: UnitSnapshotRecord) -> None:
            sink = sinks.get(name)
            if sink is not None:
                sink(record)  # aggregation fabric (wired post-deploy)
            else:
                mgmt.send(observer.on_unit_record, record)

        return ship

    def _register_units(self, name: str) -> None:
        switch = self.network.switch(name)
        cp = self.control_planes[name]
        connected = switch.connected_ports()
        feasible = (self.network.feasible_channels(name)
                    if self.config.channel_state else set())
        for port_index in connected:
            port = switch.ports[port_index]
            cp.register_unit(port.ingress.snapshot_agent,
                             self._ingress_gating(name, port_index))
            cp.register_unit(port.egress.snapshot_agent,
                             self._egress_gating(switch, feasible, port_index))
        self.observer.register_device(
            name, cp,
            {UnitId(name, p, d) for p in connected
             for d in (Direction.INGRESS, Direction.EGRESS)})

    def _cos_classes(self, switch: Switch) -> list[int]:
        if self.config.cos_classes is not None:
            return [c for c in self.config.cos_classes
                    if 0 <= c < switch.config.num_cos]
        return list(range(switch.config.num_cos))

    def _ingress_gating(self, switch_name: str, port: int) -> list[int]:
        if not self.config.channel_state:
            return []
        peer, kind = self.network.peer_of_port(switch_name, port)
        peer_enabled = (kind is NodeKind.SWITCH and peer in self.switch_names)
        if peer_enabled or self.config.gate_host_channels:
            # One external sub-channel per CoS lane (lane 0 is the
            # classic EXTERNAL_CHANNEL).
            return self._cos_classes(self.network.switch(switch_name))
        return []

    def _egress_gating(self, switch: Switch, feasible_channels,
                       port: int) -> list[int]:
        """Channels whose Last Seen gates this egress's completion: every
        (feasible ingress port, configured CoS class) pair — derived from
        the routing function so completion never gates on structurally
        idle channels (§6)."""
        if not self.config.channel_state:
            return []
        classes = self._cos_classes(switch)
        return sorted({switch.egress_channel_id(p_in, cos)
                       for (p_in, p_out) in feasible_channels
                       if p_out == port
                       for cos in classes})

    # ------------------------------------------------------------------
    # Aggregation fabric (repro.core.aggregation)
    # ------------------------------------------------------------------
    def _wire_aggregation(self) -> None:
        """Wire the hierarchical snapshot fabric, when configured.

        Runs after :meth:`_deploy` (agents attach to existing control
        planes) and installs per-switch record sinks so the already-built
        shippers route through the fabric from the next record on.  The
        cross-shard variant overrides the small ``_agg_*`` primitives,
        not this orchestration.
        """
        cfg = self.config.aggregation
        if cfg is None:
            return
        intake = self._agg_make_intake(cfg)
        send_root = self._agg_root_sender(intake)
        if cfg.degree == 0:
            # Flat-modeled baseline: unicast initiation, but each record
            # crosses the observer's modeled intake as its own message.
            for name in sorted(self.control_planes):
                self._record_sinks[name] = _make_flat_sink(
                    name, self.control_planes[name], send_root)
            self.aggregation = AggregationFabric(config=cfg, tree=None,
                                                 intake=intake)
            return
        tree = AggregationTree.build(self.network.topology,
                                     self._agg_participants(), cfg.degree)
        agents: dict[str, AggregationAgent] = {}
        for name in sorted(self.control_planes):
            cp = self.control_planes[name]
            agent = AggregationAgent(self.network.sim, cfg, name, tree)
            agent.control_plane = cp
            cp.agg_agent = agent
            agent.expected_local = 2 * len(
                self.network.switch(name).connected_ports())
            agents[name] = agent
            self._record_sinks[name] = agent.on_local_record
        for name in sorted(agents):
            agent = agents[name]
            if tree.parent[name] is None:
                agent.send_up = send_root
            else:
                agent.send_up = self._agg_parent_sender(tree.parent[name],
                                                        agents)
            agent.forward_init = self._agg_init_forwarder(agents)
        self.aggregation = AggregationFabric(config=cfg, tree=tree,
                                             agents=agents, intake=intake)
        self._agg_finalize(tree, agents)

    def _agg_participants(self) -> list[str]:
        """Switches spanned by the tree (every deployed switch)."""
        return self.switch_names

    def _agg_make_intake(self, cfg: AggregationConfig) -> Optional[RelayChannel]:
        """The observer-side intake channel servicing root messages."""
        return RelayChannel(self.network.sim, cfg, self.observer.on_aggregate)

    def _agg_root_sender(self, intake: Optional[RelayChannel]):
        mgmt = self.network.mgmt

        def send(message: AggregateMessage) -> None:
            mgmt.send(intake.deliver, message)

        return send

    def _agg_parent_sender(self, parent: str,
                           agents: dict[str, AggregationAgent]):
        mgmt = self.network.mgmt
        channel = agents[parent].channel

        def send(message: AggregateMessage) -> None:
            mgmt.send(channel.deliver, message)

        return send

    def _agg_init_forwarder(self, agents: dict[str, AggregationAgent]):
        mgmt = self.network.mgmt

        def forward(child: str, epoch: int, at_wall_ns: int) -> None:
            mgmt.send(agents[child].on_initiation, epoch, at_wall_ns)

        return forward

    def _agg_finalize(self, tree: AggregationTree,
                      agents: dict[str, AggregationAgent]) -> None:
        """Attach the fabric to the observer: fan-out through the root,
        plus direct per-subtree re-initiation for tree-aware retries
        (the observer addresses a silent relay's children directly, so a
        dead relay never sits on its own recovery path)."""
        mgmt = self.network.mgmt
        root_agent = agents[tree.root]

        def initiate(epoch: int, at_wall_ns: int) -> None:
            mgmt.send(root_agent.on_initiation, epoch, at_wall_ns)

        def retry_subtree(device: str, epoch: int, at_wall_ns: int) -> None:
            mgmt.send(agents[device].on_initiation, epoch, at_wall_ns)

        self.observer.attach_fabric(initiate, tree,
                                    retry_subtree=retry_subtree)

    # ------------------------------------------------------------------
    # Convenience passthroughs
    # ------------------------------------------------------------------
    def take_snapshot(self, at_wall_ns: Optional[int] = None) -> int:
        return self.observer.take_snapshot(at_wall_ns)

    def schedule_campaign(self, count: int, interval_ns: int,
                          start_wall_ns: Optional[int] = None) -> list[int]:
        return self.observer.schedule_campaign(count, interval_ns, start_wall_ns)

    def inject_probes(self) -> None:
        """Force snapshot-ID propagation on every switch (liveness)."""
        for cp in self.control_planes.values():
            cp.inject_probes()

    def sync_spread_ns(self, epoch: int) -> Optional[int]:
        """Synchronization of one snapshot ID, defined as in §8.1: the
        difference between the earliest and latest data-plane timestamps
        on any notification carrying that ID."""
        times: list[int] = []
        for cp in self.control_planes.values():
            times.extend(t for (e, _u, t) in cp.progress_log if e == epoch)
        if len(times) < 2:
            return None
        return max(times) - min(times)

    def notification_stats(self) -> dict[str, int]:
        """Aggregate notification-channel health across switches."""
        stats = {"received": 0, "processed": 0, "dropped": 0, "backlog": 0}
        for cp in self.control_planes.values():
            stats["received"] += cp.channel.received
            stats["processed"] += cp.channel.processed
            stats["dropped"] += cp.channel.dropped
            stats["backlog"] += cp.channel.backlog
        return stats
