"""One-call deployment builder: :func:`repro.core.deploy`.

Every experiment used to spell out the same two lines::

    deployment = SpeedlightDeployment(
        network, DeploymentConfig(metric="packet_count", channel_state=True))

:func:`deploy` collapses that boilerplate — and is the single place
where the optional overlays (recovery policies, the aggregation fabric,
coordinated update plans) compose::

    deployment = deploy(network, metric="packet_count", channel_state=True,
                        recovery=recovery_preset("paper"),
                        aggregation=AggregationConfig(degree=4),
                        updates=plan, update_horizon_ns=100 * MS)

Passing a :class:`~repro.sim.shard.ShardWorker` instead of a
:class:`~repro.sim.network.Network` builds the cross-shard variant
(:class:`~repro.core.sharded.ShardedSpeedlightDeployment`) with the
same surface.  The constructors remain the primitive — ``deploy`` is
sugar plus update wiring, nothing else — so existing code keeps
working unchanged.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.deployment import DeploymentConfig, SpeedlightDeployment
from repro.sim.network import Network

__all__ = ["deploy"]


def _compile_updates(network: Network, updates: Any,
                     update_horizon_ns: Optional[int],
                     update_seed: int):
    """Normalize the ``updates`` argument into an armed-ready schedule."""
    from repro.updates.plan import UpdateContext, UpdatePlan, UpdateSchedule

    if isinstance(updates, UpdateSchedule):
        return updates
    if not isinstance(updates, UpdatePlan):
        # JSON form (inline dict, e.g. straight off --update-plan).
        updates = UpdatePlan.from_jsonable(updates)
    if update_horizon_ns is None:
        raise ValueError(
            "deploy(updates=<plan>) needs update_horizon_ns to compile "
            "the plan's window (pass a compiled UpdateSchedule to skip "
            "compilation)")
    ctx = UpdateContext.for_topology(network.topology,
                                     horizon_ns=update_horizon_ns,
                                     seed=update_seed)
    return updates.compile(ctx)


def deploy(target, *, metric: str = "packet_count",
           channel_state: bool = False, max_sid: Optional[int] = 255,
           switches: Optional[list] = None, ideal_units: bool = False,
           gate_host_channels: bool = False,
           cos_classes: Optional[list] = None,
           control_plane=None, observer=None, aggregation=None,
           recovery=None, updates=None,
           update_horizon_ns: Optional[int] = None,
           update_seed: int = 0) -> SpeedlightDeployment:
    """Wire a Speedlight deployment onto ``target`` in one call.

    ``target`` is a :class:`~repro.sim.network.Network` (single-process)
    or a :class:`~repro.sim.shard.ShardWorker` (space-parallel; builds
    the sharded deployment).  Keyword arguments mirror
    :class:`~repro.core.deployment.DeploymentConfig` field-for-field;
    ``control_plane``/``observer`` default to the config's defaults when
    None.

    ``updates`` accepts an :class:`~repro.updates.plan.UpdatePlan`, its
    JSON form, or a pre-compiled
    :class:`~repro.updates.plan.UpdateSchedule`; plans additionally need
    ``update_horizon_ns`` (the compile window).  The compiled schedule
    is armed through an :class:`~repro.updates.driver.UpdateDriver`
    exposed as ``deployment.update_driver`` — with no plan the driver is
    absent and the event stream stays bit-identical (sharded callers
    pre-slice the schedule with
    :meth:`~repro.updates.plan.UpdateSchedule.restrict` and pass the
    slice).
    """
    config_kwargs: dict[str, Any] = dict(
        metric=metric, channel_state=channel_state, max_sid=max_sid,
        switches=switches, ideal_units=ideal_units,
        gate_host_channels=gate_host_channels, cos_classes=cos_classes,
        aggregation=aggregation, recovery=recovery)
    if control_plane is not None:
        config_kwargs["control_plane"] = control_plane
    if observer is not None:
        config_kwargs["observer"] = observer
    config = DeploymentConfig(**config_kwargs)

    if isinstance(target, Network):
        network = target
        deployment = SpeedlightDeployment(network, config)
    else:
        from repro.core.sharded import ShardedSpeedlightDeployment

        network = target.network
        deployment = ShardedSpeedlightDeployment(target, config)

    if updates is not None:
        from repro.updates.driver import UpdateDriver

        schedule = _compile_updates(network, updates, update_horizon_ns,
                                    update_seed)
        driver = UpdateDriver(network, schedule)
        driver.arm()
        deployment.update_driver = driver
    return deployment
