"""Measurement campaigns with automatic replacement of bad snapshots.

"All values are shipped to the snapshot observer ... The observer
computes completion and executes retries." (§6)

:class:`ConsistentCampaign` drives a snapshot campaign toward a target
number of *usable* (complete and consistent) snapshots: it schedules at
a fixed cadence and, whenever a snapshot resolves incomplete or
inconsistent, schedules a replacement — the observer-level retry loop
that makes channel-state measurement practical on hardware that
occasionally has to discard epochs (§5.3).

The campaign is event-driven (no busy polling): it reacts to snapshot
completion callbacks and to the per-epoch deadline checks the observer
already schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import Optional

from repro.core.observer import SnapshotObserver
from repro.core.snapshot import GlobalSnapshot, SnapshotStatus
from repro.sim.engine import MS, Simulator


@dataclass
class CampaignConfig:
    """Policy for a consistent-snapshot campaign."""

    #: Usable snapshots to collect.
    target: int = 10
    #: Cadence of the primary schedule (replacements append at the same
    #: cadence after the original tail).
    interval_ns: int = 10 * MS
    #: Upper bound on total snapshots taken (defense against a broken
    #: deployment consuming epochs forever); None disables.
    max_attempts: Optional[int] = None
    #: How long after its scheduled wall time a snapshot is considered
    #: failed if still pending (replacement is then scheduled).
    deadline_ns: int = 100 * MS


class ConsistentCampaign:
    """Collects a target number of usable snapshots, retrying duds."""

    def __init__(self, sim: Simulator, observer: SnapshotObserver,
                 config: Optional[CampaignConfig] = None) -> None:
        self.sim = sim
        self.observer = observer
        self.config = config or CampaignConfig()
        if self.config.target < 1:
            raise ValueError("target must be positive")
        self.usable: list[GlobalSnapshot] = []
        self.discarded: list[GlobalSnapshot] = []
        self.attempts = 0
        self._started = False
        self._done_callbacks: list[Callable[["ConsistentCampaign"], None]] = []
        self._next_slot_ns = 0
        observer.on_complete(self._on_complete)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._next_slot_ns = self.sim.now + self.observer.config.lead_time_ns
        for _ in range(self.config.target):
            self._schedule_one()

    def on_done(self, callback: Callable[["ConsistentCampaign"], None]) -> None:
        self._done_callbacks.append(callback)

    @property
    def done(self) -> bool:
        return len(self.usable) >= self.config.target

    @property
    def exhausted(self) -> bool:
        return (self.config.max_attempts is not None
                and self.attempts >= self.config.max_attempts)

    def _schedule_one(self) -> None:
        if self.done or self.exhausted:
            return
        self.attempts += 1
        wall = max(self._next_slot_ns,
                   self.sim.now + self.observer.config.lead_time_ns)
        self._next_slot_ns = wall + self.config.interval_ns
        epoch = self.observer.take_snapshot(at_wall_ns=wall)
        self.sim.schedule_at(wall + self.config.deadline_ns,
                             self._check_deadline, epoch)

    # ------------------------------------------------------------------
    # Reactions
    # ------------------------------------------------------------------
    def _on_complete(self, snapshot: GlobalSnapshot) -> None:
        if self.done:
            return
        if snapshot.usable:
            self.usable.append(snapshot)
            if self.done:
                for callback in self._done_callbacks:
                    callback(self)
        else:
            self.discarded.append(snapshot)
            self._schedule_one()

    def _check_deadline(self, epoch: int) -> None:
        snapshot = self.observer.snapshot(epoch)
        if snapshot.status is SnapshotStatus.PENDING and not self.done:
            # Completion may still happen later (the observer keeps
            # retrying), but the campaign moves on with a replacement.
            self.discarded.append(snapshot)
            self._schedule_one()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ConsistentCampaign(usable={len(self.usable)}/"
                f"{self.config.target}, attempts={self.attempts})")
