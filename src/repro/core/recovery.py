"""Recovery policies — the §6 liveness machinery as a first-class spec.

The paper's recovery knobs (control-plane re-initiation timeouts,
liveness-probe delay, register polls, digest flush timers, observer
retry/device timeouts) used to be hard-coded fields scattered across
:class:`~repro.core.control_plane.ControlPlaneConfig` and
:class:`~repro.core.observer.ObserverConfig`.  A :class:`RecoveryPolicy`
gathers exactly those knobs into one frozen, JSON-round-trippable spec
that can be

* handed to :class:`~repro.core.deployment.DeploymentConfig` via its
  ``recovery`` field (the deployment derives the CP/observer configs),
* swept by :mod:`repro.experiments.recovery` against
  :class:`~repro.faults.FaultProfile`\\ s to map the
  completion-vs-overhead frontier, and
* embedded in trial params (so the policy is part of the trial cache
  fingerprint).

``register_poll_interval_ns`` adds the one §6 mechanism that previously
existed only as a manual call: periodic proactive register polls that
recover from dropped notifications without waiting for re-initiation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Mapping
from typing import Any, Optional

from repro.core.control_plane import ControlPlaneConfig
from repro.core.observer import ObserverConfig
from repro.sim.engine import MS, US

__all__ = ["RECOVERY_PRESETS", "RecoveryPolicy", "recovery_preset"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Every §6 recovery/liveness tunable, in one declarative object.

    The defaults reproduce the paper-calibrated values that were
    previously hard-coded, so ``RecoveryPolicy()`` is behaviourally
    neutral.
    """

    name: str = "paper-default"
    #: Control plane: re-send initiations for locally incomplete epochs.
    reinitiation_timeout_ns: int = 20 * MS
    max_reinitiations: int = 3
    #: Control plane: idle-channel probe injection after each initiation
    #: (0 disables; liveness then rides on re-initiation alone).
    probe_delay_ns: int = 2 * MS
    #: Control plane: periodic proactive register polls (0 disables) —
    #: recovers from dropped notifications without waiting for timeouts.
    register_poll_interval_ns: int = 0
    #: Control plane (digest transport only): flush timer.
    digest_timeout_ns: int = 500 * US
    #: Observer: re-register initiations for incomplete snapshots.
    retry_timeout_ns: int = 50 * MS
    max_retries: int = 2
    #: Observer: exclude silent devices only after this grace period.
    device_timeout_ns: int = 250 * MS

    def __post_init__(self) -> None:
        for field_name in ("reinitiation_timeout_ns", "probe_delay_ns",
                           "register_poll_interval_ns", "digest_timeout_ns",
                           "retry_timeout_ns", "device_timeout_ns"):
            if getattr(self, field_name) < 0:
                raise ValueError(
                    f"{field_name} must be >= 0, "
                    f"got {getattr(self, field_name)}")
        if self.max_reinitiations < 0:
            raise ValueError(
                f"max_reinitiations must be >= 0, "
                f"got {self.max_reinitiations}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_timeout_ns <= 0:
            raise ValueError(
                f"retry_timeout_ns must be > 0, got {self.retry_timeout_ns}")

    # ------------------------------------------------------------------
    # Threading into the core configs
    # ------------------------------------------------------------------
    def control_plane_config(
            self, base: Optional[ControlPlaneConfig] = None,
    ) -> ControlPlaneConfig:
        """The control-plane config with this policy's recovery fields
        applied over ``base`` (every non-recovery field is preserved)."""
        return replace(
            base if base is not None else ControlPlaneConfig(),
            reinitiation_timeout_ns=self.reinitiation_timeout_ns,
            max_reinitiations=self.max_reinitiations,
            probe_delay_ns=self.probe_delay_ns,
            register_poll_interval_ns=self.register_poll_interval_ns,
            digest_timeout_ns=self.digest_timeout_ns)

    def observer_config(
            self, base: Optional[ObserverConfig] = None) -> ObserverConfig:
        """The observer config with this policy's retry/exclusion fields
        applied over ``base``."""
        return replace(
            base if base is not None else ObserverConfig(),
            retry_timeout_ns=self.retry_timeout_ns,
            max_retries=self.max_retries,
            device_timeout_ns=self.device_timeout_ns)

    # ------------------------------------------------------------------
    # Serialization (trial params / CLI)
    # ------------------------------------------------------------------
    def to_jsonable(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "reinitiation_timeout_ns": self.reinitiation_timeout_ns,
            "max_reinitiations": self.max_reinitiations,
            "probe_delay_ns": self.probe_delay_ns,
            "register_poll_interval_ns": self.register_poll_interval_ns,
            "digest_timeout_ns": self.digest_timeout_ns,
            "retry_timeout_ns": self.retry_timeout_ns,
            "max_retries": self.max_retries,
            "device_timeout_ns": self.device_timeout_ns,
        }

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "RecoveryPolicy":
        return cls(**dict(data))


def _presets() -> dict[str, RecoveryPolicy]:
    return {
        # The hard-coded values of PRs past, now merely a default.
        "paper-default": RecoveryPolicy(),
        # Spend control messages freely for fast, robust completion.
        "eager": RecoveryPolicy(
            name="eager",
            reinitiation_timeout_ns=5 * MS, max_reinitiations=5,
            probe_delay_ns=1 * MS, register_poll_interval_ns=5 * MS,
            retry_timeout_ns=20 * MS, max_retries=4,
            device_timeout_ns=120 * MS),
        # Minimal overhead: one late re-initiation, slow probes, no
        # polls, a single observer retry.
        "patient": RecoveryPolicy(
            name="patient",
            reinitiation_timeout_ns=60 * MS, max_reinitiations=1,
            probe_delay_ns=10 * MS, register_poll_interval_ns=0,
            retry_timeout_ns=100 * MS, max_retries=1,
            device_timeout_ns=400 * MS),
        # Paper defaults plus periodic register polls — isolates what
        # proactive polling buys on top of the timeout machinery.
        "polling": RecoveryPolicy(
            name="polling", register_poll_interval_ns=10 * MS),
    }


#: Named policies for sweeps and the CLI; see :func:`recovery_preset`.
RECOVERY_PRESETS: dict[str, RecoveryPolicy] = _presets()


def recovery_preset(name: str) -> RecoveryPolicy:
    """Look up a named policy preset (raises with the known names)."""
    try:
        return RECOVERY_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown recovery preset {name!r} "
            f"(known: {', '.join(sorted(RECOVERY_PRESETS))})") from None
