"""Global snapshot assembly.

The observer receives per-unit :class:`UnitSnapshotRecord` objects from
device control planes and assembles them into
:class:`GlobalSnapshot` objects — "a set of local measurements that
together provide a coherent image of the entire network data plane at
nearly a single point in time" (§1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.control_plane import UnitSnapshotRecord
from repro.sim.switch import Direction, UnitId


class SnapshotStatus(enum.Enum):
    """Lifecycle of a global snapshot at the observer."""

    PENDING = "pending"        # initiated, records still arriving
    COMPLETE = "complete"      # every expected unit reported
    PARTIAL = "partial"        # timed out with some units missing
    ABANDONED = "abandoned"    # evicted to preserve the no-lapping window


@dataclass
class GlobalSnapshot:
    """All per-unit records for one snapshot epoch."""

    epoch: int
    requested_wall_ns: int
    expected_units: set[UnitId]
    records: dict[UnitId, UnitSnapshotRecord] = field(default_factory=dict)
    excluded_devices: set[str] = field(default_factory=set)
    #: device -> why it was excluded: ``"silent"`` for a device that
    #: never reported, ``"relay:<name>"`` when its records were lost
    #: behind a silent aggregation-tree ancestor (the attribution the
    #: observer computes at timeout; see repro.core.aggregation).
    exclusion_reasons: dict[str, str] = field(default_factory=dict)
    status: SnapshotStatus = SnapshotStatus.PENDING
    retries: int = 0

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def add_record(self, record: UnitSnapshotRecord) -> bool:
        """Incorporate one unit record; returns True if it was expected."""
        if record.unit not in self.expected_units:
            return False  # spurious completion (e.g. a just-attached node)
        self.records[record.unit] = record
        return True

    def exclude_device(self, device: str, reason: str = "silent") -> None:
        """Drop a failed device from the snapshot (observer timeout, §6)."""
        self.excluded_devices.add(device)
        self.exclusion_reasons[device] = reason
        self.expected_units = {u for u in self.expected_units
                               if u.device != device}
        self.records = {u: r for u, r in self.records.items()
                        if u.device != device}

    @property
    def missing_units(self) -> set[UnitId]:
        return self.expected_units - set(self.records)

    @property
    def complete(self) -> bool:
        # ``records`` only ever holds expected units (``add_record``
        # rejects others, ``exclude_device`` filters both), so a length
        # check avoids rebuilding a UnitId set per arriving record — a
        # top-ten hotspot in notification-heavy trials.
        return len(self.records) >= len(self.expected_units)

    @property
    def consistent(self) -> bool:
        """True when every reported record is marked consistent — only
        then do the values form a causally consistent cut."""
        return all(r.consistent for r in self.records.values())

    @property
    def usable(self) -> bool:
        return self.complete and self.consistent and not self.excluded_devices

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    @property
    def capture_spread_ns(self) -> int:
        """Max minus min data-plane capture timestamp across records —
        the realized synchronization of this snapshot."""
        if not self.records:
            return 0
        times = [r.captured_ns for r in self.records.values()]
        return max(times) - min(times)

    def total_value(self, include_channel_state: bool = True) -> int:
        """Sum of all unit values (network-wide total for accumulator
        metrics such as packet counts)."""
        if include_channel_state:
            return sum(r.total_value for r in self.records.values())
        return sum(r.value for r in self.records.values())

    def value_of(self, device: str, port: int, direction: Direction) -> int:
        record = self.records[UnitId(device, port, direction)]
        return record.value

    def values_by_unit(self) -> dict[UnitId, int]:
        return {u: r.value for u, r in self.records.items()}

    def device_records(self, device: str) -> list[UnitSnapshotRecord]:
        return [r for u, r in sorted(self.records.items(),
                                     key=lambda kv: (kv[0].device, kv[0].port,
                                                     kv[0].direction.value))
                if u.device == device]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"GlobalSnapshot(epoch={self.epoch}, {self.status.value}, "
                f"{len(self.records)}/{len(self.expected_units)} records, "
                f"consistent={self.consistent})")
