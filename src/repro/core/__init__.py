"""The Synchronized Network Snapshot protocol — the paper's contribution.

Layering (mirroring §4–§6 of the paper):

* :mod:`~repro.core.ids` — snapshot-ID arithmetic with wraparound;
* :mod:`~repro.core.ideal` — the idealised per-unit algorithm (Figure 3);
* :mod:`~repro.core.dataplane` — Speedlight's hardware-constrained
  per-unit implementation (Figures 4 & 5);
* :mod:`~repro.core.notifications` — the data-plane → CPU channel;
* :mod:`~repro.core.control_plane` — per-switch coordination (Figure 7,
  §6): initiation, completion/inconsistency detection, liveness;
* :mod:`~repro.core.observer` — the host-side snapshot observer;
* :mod:`~repro.core.snapshot` — global snapshot assembly;
* :mod:`~repro.core.aggregation` — the hierarchical snapshot fabric: a
  spanning relay tree that aggregates unit records and gating-min
  signals in-network so the observer services O(fan-out) messages per
  epoch instead of O(units);
* :mod:`~repro.core.deployment` — one-call wiring of all of the above
  onto a simulated network (including partial deployment, §10).

Most users only need :func:`deploy` (sugar over
:class:`SpeedlightDeployment`, which stays the primitive)::

    net = Network(leaf_spine())
    sl = deploy(net, metric="packet_count", channel_state=True)
    epochs = sl.schedule_campaign(count=100, interval_ns=10 * MS)
    net.run(until=2 * S)
    snaps = sl.observer.completed_snapshots(require_consistent=True)
"""

from repro.core.aggregation import (
    AggregateMessage,
    AggregationAgent,
    AggregationConfig,
    AggregationFabric,
    AggregationTree,
    RelayChannel,
)
from repro.core.ids import IdSpace
from repro.core.ideal import IdealUnit, IdealSlot
from repro.core.dataplane import SpeedlightUnit, SnapshotSlot
from repro.core.notifications import Notification
from repro.core.control_plane import (
    ControlPlaneConfig,
    NotificationChannel,
    SwitchControlPlane,
    UnitSnapshotRecord,
)
from repro.core.observer import ObserverConfig, SnapshotObserver
from repro.core.recovery import (
    RECOVERY_PRESETS,
    RecoveryPolicy,
    recovery_preset,
)
from repro.core.campaign import CampaignConfig, ConsistentCampaign
from repro.core.snapshot import GlobalSnapshot, SnapshotStatus
from repro.core.deployment import (
    DeploymentConfig,
    SpeedlightDeployment,
    GAUGE_METRICS,
)
from repro.core.builder import deploy
from repro.core.sharded import (
    RemoteControlPlane,
    ShardedSpeedlightDeployment,
)

__all__ = [
    "AggregateMessage",
    "AggregationAgent",
    "AggregationConfig",
    "AggregationFabric",
    "AggregationTree",
    "RelayChannel",
    "IdSpace",
    "IdealUnit",
    "IdealSlot",
    "SpeedlightUnit",
    "SnapshotSlot",
    "Notification",
    "ControlPlaneConfig",
    "NotificationChannel",
    "SwitchControlPlane",
    "UnitSnapshotRecord",
    "ObserverConfig",
    "SnapshotObserver",
    "RECOVERY_PRESETS",
    "RecoveryPolicy",
    "recovery_preset",
    "CampaignConfig",
    "ConsistentCampaign",
    "GlobalSnapshot",
    "SnapshotStatus",
    "DeploymentConfig",
    "SpeedlightDeployment",
    "GAUGE_METRICS",
    "deploy",
    "RemoteControlPlane",
    "ShardedSpeedlightDeployment",
]
