"""Hierarchical snapshot fabric: the in-network aggregation tree.

The observer-unicast design the paper evaluates services one management
message *per unit record per epoch* at a single host: the observer's
intake is exactly the serial control-plane bottleneck of Figure 10, and
it caps the snapshot rate at the same ~hundreds-of-Hz knee no matter how
fast the simulator core gets.  This module breaks that knee with the
classic in-network reduction: a configurable-degree spanning tree over
the deployed switches through which

* **initiation fans out** — the observer sends *one* message to the tree
  root; every relay registers the wall-clock instant with its own
  control plane and forwards it to its children, so an N-device fan-out
  costs the observer O(1) sends and each relay O(degree);
* **completion aggregates bottom-up** — each switch hosts an
  :class:`AggregationAgent` that collects its own control plane's unit
  records plus its children's aggregates, combining them into one
  upward :class:`AggregateMessage` per epoch (plus timed partial
  flushes for liveness), so the observer services O(root fan-out)
  messages per epoch instead of O(units);
* **progress floors reduce along the way** — every upward message
  carries the MIN over its subtree of the control planes' finalized
  epochs (the gating-min reduction), giving the observer a fabric-wide
  progress floor without polling anyone.

Cost model.  Relay messages land in a bounded, serially-serviced
:class:`RelayChannel` — same shape as the control plane's notification
channel — whose per-message cost is one CPU wakeup
(:attr:`AggregationConfig.relay_service_ns`) plus a per-record
decode/combine cost (:attr:`AggregationConfig.relay_per_record_ns`).
The per-record cost is far below the notification path's 110 µs because
a relay handles pre-parsed records in batch (the same amortisation
argument as the digest transport's per-record decode, without its flush
latency on the *notification* path).  ``degree=0`` is the flat-modeled
baseline: no tree, unicast initiation, but every record crosses the
observer's modeled intake channel as its own message — which is what an
honest accounting of the paper's observer looks like, and what the
``agg_knee`` benchmark shows collapsing as the fabric grows.

Determinism.  Tree construction is a pure function of (topology,
participating switches, degree) with sorted-name tie-breaks, exactly
like :func:`repro.sim.network.partition_topology`; agents use no RNG at
all (relay costs are deterministic), so the aggregated event stream is
reproducible and shard-count independent.  With ``aggregation=None``
the deployment wires nothing from this module and the event stream is
bit-identical to the flat design (the golden-trace guarantee).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Optional

from repro.core.control_plane import SwitchControlPlane, UnitSnapshotRecord
from repro.sim.engine import Simulator, US, MS
from repro.topology.graph import NodeKind, Topology

__all__ = [
    "AggregateMessage",
    "AggregationAgent",
    "AggregationConfig",
    "AggregationFabric",
    "AggregationTree",
    "RelayChannel",
]


@dataclass
class AggregationConfig:
    """Shape and cost model of the aggregation fabric.

    ``degree`` selects the fabric: ``0`` is the flat-modeled baseline
    (no tree; unicast initiation; one intake message per unit record),
    ``>= 1`` builds a spanning tree with at most that many children per
    node.  ``None`` at the deployment level disables this module
    entirely (and keeps the event stream bit-identical to the
    pre-aggregation design).
    """

    #: Max children per tree node (0 = flat-modeled unicast baseline).
    degree: int = 4
    #: CPU wakeup cost of servicing one relay message.
    relay_service_ns: int = 150 * US
    #: Per-record decode/combine cost within a message.
    relay_per_record_ns: int = 4 * US
    #: Forward a partial (incomplete) aggregate this long after records
    #: start waiting on silent children/local units (0 disables; records
    #: then only move on subtree completion).
    flush_timeout_ns: int = 25 * MS
    #: Relay receive-buffer capacity (messages); overflow drops.
    buffer_capacity: int = 4096

    def __post_init__(self) -> None:
        if self.degree < 0:
            raise ValueError(f"degree must be >= 0, got {self.degree}")


@dataclass
class AggregateMessage:
    """One upward hop's worth of aggregated snapshot progress."""

    #: Sending agent's switch (``tree.parent[source]`` receives it).
    source: str
    epoch: int
    #: Records from ``source``'s subtree not yet forwarded upward.
    records: list[UnitSnapshotRecord]
    #: MIN over the subtree of each control plane's finalized epoch —
    #: the gating-min progress floor, reduced at every hop.
    min_finalized: int
    #: True when every unit in ``source``'s subtree reported ``epoch``.
    complete: bool


class AggregationTree:
    """A deterministic bounded-degree spanning tree over switches.

    Construction mirrors :func:`~repro.sim.network.partition_topology`:
    the root is the highest-switch-degree participant (sorted name as
    tie-break), BFS adoption follows topology edges taking sorted
    neighbors while fan-out lasts, and any switches BFS cannot reach
    under the degree cap (disconnected, or fenced off by full nodes)
    attach in sorted order to the earliest discovered node with spare
    capacity.  Pure function of (topology, participants, degree) — no
    hashes, no set-iteration order.
    """

    def __init__(self, root: str, parent: dict[str, Optional[str]],
                 children: dict[str, list[str]], order: list[str]) -> None:
        self.root = root
        self.parent = parent
        self.children = children
        #: Discovery order (root first) — the attachment scan order.
        self.order = order

    @classmethod
    def build(cls, topology: Topology, switches: list[str],
              degree: int) -> "AggregationTree":
        if degree < 1:
            raise ValueError(f"tree degree must be >= 1, got {degree}")
        participants = sorted(switches)
        if not participants:
            raise ValueError("cannot build an aggregation tree over zero "
                             "switches")
        member = set(participants)

        def switch_degree(name: str) -> int:
            return sum(1 for n in topology.neighbors(name)
                       if topology.kind(n) is NodeKind.SWITCH)

        root = max(participants, key=switch_degree)
        parent: dict[str, Optional[str]] = {root: None}
        children: dict[str, list[str]] = {name: [] for name in participants}
        order = [root]
        visited = {root}
        queue = deque([root])
        while queue:
            node = queue.popleft()
            for neighbor in sorted(topology.neighbors(node)):
                if len(children[node]) >= degree:
                    break
                if neighbor not in member or neighbor in visited:
                    continue
                parent[neighbor] = node
                children[node].append(neighbor)
                visited.add(neighbor)
                order.append(neighbor)
                queue.append(neighbor)
        # Leftovers (degree-capped frontier or disconnected components)
        # attach to the earliest discovered node with spare fan-out;
        # each attachment adds capacity, so this always terminates.
        for name in participants:
            if name in visited:
                continue
            host = next(n for n in order if len(children[n]) < degree)
            parent[name] = host
            children[host].append(name)
            visited.add(name)
            order.append(name)
        return cls(root=root, parent=parent, children=children, order=order)

    def ancestors(self, name: str) -> list[str]:
        """Chain from ``name``'s parent up to the root."""
        chain: list[str] = []
        node = self.parent[name]
        while node is not None:
            chain.append(node)
            node = self.parent[node]
        return chain

    def depth(self) -> int:
        """Longest root-to-leaf hop count."""
        return max(len(self.ancestors(name)) for name in self.order)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AggregationTree(root={self.root!r}, "
                f"nodes={len(self.order)}, depth={self.depth()})")


class RelayChannel:
    """A bounded, serially-serviced aggregate-message queue.

    The relay CPU analogue of the control plane's
    :class:`~repro.core.control_plane.NotificationChannel`: one wakeup
    per message plus a per-record combine cost, deterministic (no
    jitter — relays batch pre-parsed records, they do not cross the
    Thrift/driver path the notification jitter models).
    """

    def __init__(self, sim: Simulator, config: AggregationConfig,
                 handler: Callable[[AggregateMessage], None]) -> None:
        self.sim = sim
        self.config = config
        self.handler = handler
        self._queue: deque[AggregateMessage] = deque()
        self._busy = False
        #: Per-instance fault knob (crash coupling flips it).
        self.online = True
        self.received = 0
        self.processed = 0
        self.dropped = 0
        self.records_in = 0
        self.max_backlog = 0

    @property
    def backlog(self) -> int:
        return len(self._queue) + (1 if self._busy else 0)

    def deliver(self, message: AggregateMessage) -> None:
        self.received += 1
        if not self.online or len(self._queue) >= self.config.buffer_capacity:
            self.dropped += 1
            return
        self.records_in += len(message.records)
        self._queue.append(message)
        self.max_backlog = max(self.max_backlog, self.backlog)
        if not self._busy:
            self._service_next()

    def flush_queued(self) -> int:
        """Discard everything queued (crash coupling); returns the count
        of *records* lost with the queued messages."""
        lost = sum(len(m.records) for m in self._queue)
        self._queue.clear()
        return lost

    def _service_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        message = self._queue.popleft()
        cost = (self.config.relay_service_ns +
                len(message.records) * self.config.relay_per_record_ns)
        self.sim.schedule(max(1, cost), self._finish, message)

    def _finish(self, message: AggregateMessage) -> None:
        if not self.online:
            self._busy = False
            self.dropped += 1
            return
        self.processed += 1
        self.handler(message)
        self._service_next()


class _EpochAggregate:
    """One agent's in-progress combine for one epoch."""

    __slots__ = ("records", "local_seen", "children_complete", "flush_event")

    def __init__(self) -> None:
        self.records: list[UnitSnapshotRecord] = []
        self.local_seen = 0
        self.children_complete: set[str] = set()
        self.flush_event = None


class AggregationAgent:
    """The per-switch relay of the aggregation tree.

    Sits beside the switch's control plane (same CPU — crashing the CP
    takes the agent down with it): collects the CP's finalized unit
    records at zero extra modeled cost (they are produced on this very
    CPU), services child aggregates through its :class:`RelayChannel`,
    and sends one combined :class:`AggregateMessage` per epoch to its
    tree parent — as soon as its subtree completes, or in timed partial
    flushes so one silent child never strands its siblings' records.
    Every record moves upward exactly once.
    """

    def __init__(self, sim: Simulator, config: AggregationConfig,
                 name: str, tree: AggregationTree) -> None:
        self.sim = sim
        self.config = config
        self.name = name
        self.tree = tree
        self.parent = tree.parent[name]
        self.children = tuple(tree.children[name])
        #: Unit records this switch's own CP contributes per epoch
        #: (installed by the deployment: 2 per connected port).
        self.expected_local = 0
        #: The co-resident control plane (progress-floor source).
        self.control_plane: Optional[SwitchControlPlane] = None
        #: Upward sender (installed by the deployment: mgmt to the local
        #: parent agent, cross-shard mailbox, or the observer intake).
        self.send_up: Optional[Callable[[AggregateMessage], None]] = None
        #: Downward initiation forwarder: ``forward(child, epoch, at)``.
        self.forward_init: Optional[Callable[[str, int, int], None]] = None
        self.channel = RelayChannel(sim, config, self._on_message)
        self.online = True
        self.messages_sent = 0
        self.partial_flushes = 0
        self.records_forwarded = 0
        self.records_lost = 0
        self._child_min: dict[str, int] = {c: 0 for c in self.children}
        self._epochs: dict[int, _EpochAggregate] = {}
        self._completed: set[int] = set()

    # ------------------------------------------------------------------
    # Initiation fan-out (observer -> root -> ... -> leaves)
    # ------------------------------------------------------------------
    def on_initiation(self, epoch: int, at_wall_ns: int) -> None:
        """Register a snapshot instant locally and relay it down the
        tree.  Initiation is wall-clock-addressed, so the per-hop relay
        latency only consumes observer lead time — it cannot skew the
        snapshot instant itself."""
        if not self.online:
            return  # observer retries fall back to unicast (§6 recovery)
        if self.control_plane is not None:
            self.control_plane.schedule_initiation(epoch, at_wall_ns)
        if self.forward_init is not None:
            for child in self.children:
                self.forward_init(child, epoch, at_wall_ns)

    # ------------------------------------------------------------------
    # Bottom-up combine
    # ------------------------------------------------------------------
    def on_local_record(self, record: UnitSnapshotRecord) -> None:
        """Sink for the co-resident control plane's finalized records."""
        if not self.online:
            self.records_lost += 1
            return
        aggregate = self._aggregate(record.epoch)
        aggregate.records.append(record)
        aggregate.local_seen += 1
        self._after_update(record.epoch, aggregate)

    def _on_message(self, message: AggregateMessage) -> None:
        current = self._child_min.get(message.source, 0)
        if message.min_finalized > current:
            self._child_min[message.source] = message.min_finalized
        if message.epoch in self._completed:
            # Straggler after our own completion claim (e.g. a child
            # restarted mid-epoch): pass the records through so nothing
            # is ever stranded at an intermediate hop.
            if message.records:
                self._send(message.epoch, list(message.records),
                           complete=False)
            return
        aggregate = self._aggregate(message.epoch)
        aggregate.records.extend(message.records)
        if message.complete:
            aggregate.children_complete.add(message.source)
        self._after_update(message.epoch, aggregate)

    def _aggregate(self, epoch: int) -> _EpochAggregate:
        aggregate = self._epochs.get(epoch)
        if aggregate is None:
            aggregate = self._epochs[epoch] = _EpochAggregate()
        return aggregate

    def _after_update(self, epoch: int, aggregate: _EpochAggregate) -> None:
        if (aggregate.local_seen >= self.expected_local
                and len(aggregate.children_complete) == len(self.children)):
            if aggregate.flush_event is not None:
                aggregate.flush_event.cancel()
            records = aggregate.records
            del self._epochs[epoch]
            self._completed.add(epoch)
            self._send(epoch, records, complete=True)
            return
        if (aggregate.records and aggregate.flush_event is None
                and self.config.flush_timeout_ns > 0):
            aggregate.flush_event = self.sim.schedule(
                self.config.flush_timeout_ns, self._flush, epoch)

    def _flush(self, epoch: int) -> None:
        """Partial-aggregate liveness: forward what has accumulated even
        though the subtree is incomplete, so a dead child delays only its
        own records (and the observer's device timeout can attribute the
        silence to the right relay)."""
        aggregate = self._epochs.get(epoch)
        if aggregate is None:
            return
        aggregate.flush_event = None
        if not aggregate.records or not self.online:
            return
        records = aggregate.records
        aggregate.records = []
        self.partial_flushes += 1
        self._send(epoch, records, complete=False)

    def _send(self, epoch: int, records: list[UnitSnapshotRecord],
              complete: bool) -> None:
        if not self.online or self.send_up is None:
            self.records_lost += len(records)
            return
        self.messages_sent += 1
        self.records_forwarded += len(records)
        self.send_up(AggregateMessage(
            source=self.name, epoch=epoch, records=records,
            min_finalized=self.min_finalized(), complete=complete))

    def min_finalized(self) -> int:
        """The gating-min progress floor of this subtree: MIN of the
        local CP's finalized epoch and every child's last reported
        floor (0 for children never heard from — an unheard subtree
        caps claimed progress, by design)."""
        local = (self.control_plane.min_finalized_epoch()
                 if self.control_plane is not None else 0)
        if not self.children:
            return local
        return min(local, min(self._child_min[c] for c in self.children))

    # ------------------------------------------------------------------
    # Crash coupling (driven by SwitchControlPlane.crash/restart)
    # ------------------------------------------------------------------
    def set_online(self, online: bool) -> None:
        """The relay shares the CP's CPU: a CP crash kills the agent's
        volatile aggregation state and its receive queue; restart comes
        back empty (records lost while down are the silent-relay case
        the observer attributes at exclusion time)."""
        if online == self.online:
            return
        self.online = online
        self.channel.online = online
        if not online:
            self.records_lost += self.channel.flush_queued()
            for aggregate in self._epochs.values():
                self.records_lost += len(aggregate.records)
                if aggregate.flush_event is not None:
                    aggregate.flush_event.cancel()
            self._epochs.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AggregationAgent({self.name!r}, parent={self.parent!r}, "
                f"children={len(self.children)}, online={self.online})")


@dataclass
class AggregationFabric:
    """The deployment-level handle on one wired aggregation fabric."""

    config: AggregationConfig
    #: None in flat-modeled mode (``degree=0``).
    tree: Optional[AggregationTree]
    #: Locally hosted agents by switch name (a shard sees only its own).
    agents: dict[str, AggregationAgent] = field(default_factory=dict)
    #: The observer-side intake channel (None on non-observer shards).
    intake: Optional[RelayChannel] = None

    def stats(self) -> dict[str, int]:
        """Fabric health counters, aggregated across local agents and
        the intake — the ``agg_knee`` sustained-rate criteria."""
        out = {"messages": 0, "dropped": 0, "backlog": 0, "max_backlog": 0,
               "records_forwarded": 0, "records_lost": 0,
               "partial_flushes": 0, "intake_processed": 0,
               "intake_backlog": 0, "intake_max_backlog": 0,
               "intake_dropped": 0}
        for name in sorted(self.agents):
            agent = self.agents[name]
            out["messages"] += agent.channel.processed
            out["dropped"] += agent.channel.dropped
            out["backlog"] += agent.channel.backlog
            out["max_backlog"] = max(out["max_backlog"],
                                     agent.channel.max_backlog)
            out["records_forwarded"] += agent.records_forwarded
            out["records_lost"] += agent.records_lost
            out["partial_flushes"] += agent.partial_flushes
        if self.intake is not None:
            out["intake_processed"] = self.intake.processed
            out["intake_backlog"] = self.intake.backlog
            out["intake_max_backlog"] = self.intake.max_backlog
            out["intake_dropped"] = self.intake.dropped
        return out
