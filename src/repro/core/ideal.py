"""The idealised network snapshot protocol of Figure 3.

This is the algorithm as specified *before* hardware constraints: on a
forward jump the unit loops over every intermediate snapshot ID saving
local state, and an in-flight packet updates the channel state of every
snapshot between the packet's epoch and the local epoch.  No consistency
loss is possible.

It exists for three reasons:

* **Specification oracle** — property tests run Speedlight and the ideal
  unit side by side: wherever the control plane declares a Speedlight
  snapshot consistent, its value must equal the ideal unit's.
* **Ablation** — the ``ideal-vs-speedlight`` benchmark quantifies what
  the hardware limitations cost (how many snapshots get marked
  inconsistent under ID skips that the ideal protocol would absorb).
* **Readability** — it is the executable form of the paper's pseudocode.

The unit satisfies the same ``SnapshotAgent`` protocol as
:class:`~repro.core.dataplane.SpeedlightUnit`, so it can be dropped into
a simulated switch unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import Optional

from repro.core.ids import IdSpace
from repro.core.notifications import Notification
from repro.sim.packet import Packet, PacketType
from repro.sim.switch import UnitId


@dataclass
class IdealSlot:
    """A snapshot record of the idealised protocol (always consistent).

    ``valid`` exists for control-plane register-API compatibility with
    :class:`~repro.core.dataplane.SnapshotSlot`; an ideal slot is valid
    from the moment it is captured.
    """

    value: int = 0
    channel_state: int = 0
    captured_ns: int = 0
    valid: bool = True


class IdealUnit:
    """Figure 3's per-processing-unit protocol, verbatim.

    Snapshot IDs are logical (unwrapped) integers; ``snaps`` holds every
    epoch ever captured.  ``onReceiveCS``/``onReceiveNoCS`` collapse into
    one method parameterised by ``channel_state``.
    """

    def __init__(self, unit_id: UnitId, value_fn: Callable[[], int], *,
                 channel_state: bool = False,
                 notify: Optional[Callable[[Notification], None]] = None,
                 in_flight_value_fn: Optional[Callable[[Packet], int]] = None) -> None:
        self.unit_id = unit_id
        self.ids = IdSpace(None)  # the ideal protocol never wraps
        self.value_fn = value_fn
        self.channel_state = channel_state
        self.notify = notify
        self.in_flight_value_fn = in_flight_value_fn or (lambda pkt: 1)
        self._sid = 0
        self.snaps: dict[int, IdealSlot] = {}
        self.last_seen: dict[int, int] = {}
        self.packets_seen = 0

    # ------------------------------------------------------------------
    # SnapshotAgent protocol
    # ------------------------------------------------------------------
    @property
    def sid(self) -> int:
        return self._sid

    def process_packet(self, packet: Packet, channel_id: int, now_ns: int) -> int:
        self.packets_seen += 1
        header = packet.snapshot
        assert header is not None, "snapshot unit fed a headerless packet"

        old_sid = self._sid
        if header.sid > self._sid:
            # New snapshot: save state for *every* intermediate epoch
            # (Figure 3 lines 4-5 / 16-17).
            for i in range(self._sid + 1, header.sid + 1):
                self.snaps[i] = IdealSlot(value=self.value_fn(),
                                          captured_ns=now_ns)
            self._sid = header.sid
        elif (header.sid < self._sid and self.channel_state
              and header.packet_type is PacketType.DATA):
            # In-flight packet: update the channel state of every epoch
            # it is in flight with respect to (lines 9-10).
            contribution = self.in_flight_value_fn(packet)
            for i in range(header.sid + 1, self._sid + 1):
                slot = self.snaps.get(i)
                if slot is not None:
                    slot.channel_state += contribution

        ls_changed = False
        old_ls = new_ls = None
        if self.channel_state:
            old_ls = self.last_seen.get(channel_id, 0)
            new_ls = max(old_ls, header.sid)
            if new_ls != old_ls:
                self.last_seen[channel_id] = new_ls
                ls_changed = True

        if old_sid != self._sid or ls_changed:
            if self.notify is not None:
                self.notify(Notification(
                    unit=self.unit_id, old_sid=old_sid, new_sid=self._sid,
                    timestamp_ns=now_ns,
                    channel=channel_id if self.channel_state else None,
                    old_last_seen=old_ls, new_last_seen=new_ls))
        return self._sid

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def completed_through(self, gating_channels: list[int]) -> int:
        """Highest epoch locally complete (Figure 3 line 12): with
        channel state, ``min(lastSeen[*])`` over the gating channels;
        without, simply the current ID (line 19)."""
        if not self.channel_state:
            return self._sid
        if not gating_channels:
            return self._sid
        return min(self.last_seen.get(c, 0) for c in gating_channels)

    # ------------------------------------------------------------------
    # Control-plane register API (compatible with SpeedlightUnit, so the
    # same control plane can drive either unit type for the ablation)
    # ------------------------------------------------------------------
    _EMPTY = IdealSlot(valid=False)

    def read_slot(self, epoch: int) -> IdealSlot:
        return self.snaps.get(epoch, self._EMPTY)

    def clear_slot(self, epoch: int) -> None:
        self.snaps.pop(epoch, None)

    def read_last_seen(self, channel_id: int) -> int:
        return self.last_seen.get(channel_id, 0)

    def snapshot_value(self, epoch: int, include_channel_state: bool = True) -> int:
        slot = self.snaps[epoch]
        if include_channel_state and self.channel_state:
            return slot.value + slot.channel_state
        return slot.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IdealUnit({self.unit_id}, sid={self._sid})"
