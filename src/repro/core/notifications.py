"""Snapshot notifications: the data-plane → control-plane channel.

"After any update of either the local Snapshot ID or of any Last Seen
array entry, the data plane exports a notification to the CPU to assist
in determining snapshot progress/completeness.  For an upstream neighbor
n, this notification includes the former value of LastSeen[n] along with
the former and new Snapshot ID." (§5.3)

All four values are needed because notifications can be *dropped* (the
CPU socket buffer overflows under load — the Figure 10 bottleneck): the
old values let the control plane detect that it missed an update and
handle the gap conservatively.

IDs in notifications are **wrapped** (they come from data-plane
registers); the control plane unwraps them against its 64-bit view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.switch import UnitId


@dataclass(frozen=True)
class Notification:
    """One data-plane progress report.

    ``channel``/``old_last_seen``/``new_last_seen`` are ``None`` for
    deployments without channel state, which do not maintain a Last Seen
    array (Figure 3, onReceiveNoCS).
    """

    unit: UnitId
    old_sid: int
    new_sid: int
    timestamp_ns: int
    channel: Optional[int] = None
    old_last_seen: Optional[int] = None
    new_last_seen: Optional[int] = None

    @property
    def sid_changed(self) -> bool:
        return self.old_sid != self.new_sid

    @property
    def last_seen_changed(self) -> bool:
        return (self.channel is not None and
                self.old_last_seen != self.new_last_seen)
