"""Snapshot-ID arithmetic with wraparound.

The data plane stores snapshot IDs in small registers, so "Speedlight
enables rollover of the snapshot ID to 0 after reaching the maximum ID"
(§5.3) under the assumption that "no ID in the system is ever 'lapped'".
The snapshot observer enforces that assumption out-of-band by bounding
how many snapshots can be outstanding at once.

:class:`IdSpace` centralises every wrapped-ID operation:

* wrapping an unbounded logical epoch into register width,
* circular comparison of two wrapped IDs,
* unwrapping a wrapped ID against an unwrapped reference held by the
  control plane (which tracks 64-bit logical epochs).

Comparison convention: we use the symmetric half-window rule — two
wrapped IDs compare correctly as long as their true (unwrapped) epochs
differ by at most ``window = (N - 1) // 2`` where ``N = max_sid + 1``.
The paper instead leans on the Last Seen array as a rollover reference,
which tolerates a spread up to ``N - 1``; the half-window rule is
simpler, strictly safe, and the observer's outstanding-snapshot bound is
set to ``window`` accordingly (documented deviation; see DESIGN.md).

``max_sid=None`` selects an unbounded ID space (the idealised protocol
of Figure 3, and the "Packet Count" Table 1 variant without wraparound
support, which simply requires the observer to reset before overflow).
"""

from __future__ import annotations

from typing import Optional


class IdSpace:
    """Wrapped snapshot-ID arithmetic."""

    def __init__(self, max_sid: Optional[int] = None) -> None:
        if max_sid is not None and max_sid < 3:
            raise ValueError("max_sid must be >= 3 (window would be empty)")
        self.max_sid = max_sid
        # Precomputed mirrors of the ``size``/``window`` properties:
        # ``cmp`` runs once per packet per snapshot unit.
        self._size = None if max_sid is None else max_sid + 1
        self._window = 2**62 if max_sid is None else max_sid // 2

    @property
    def size(self) -> Optional[int]:
        """Number of distinct wrapped IDs (None when unbounded)."""
        return None if self.max_sid is None else self.max_sid + 1

    @property
    def window(self) -> int:
        """Largest spread of concurrently live epochs that compares
        correctly.  The observer must not let snapshots outstanding
        exceed this."""
        if self.max_sid is None:
            return 2**62  # effectively unbounded
        return (self.size - 1) // 2

    def wrap(self, unwrapped: int) -> int:
        """Logical epoch -> register value."""
        if unwrapped < 0:
            raise ValueError(f"epochs are non-negative, got {unwrapped}")
        if self.max_sid is None:
            return unwrapped
        return unwrapped % self.size

    def cmp(self, a: int, b: int) -> int:
        """Circular comparison of wrapped IDs ``a`` and ``b``.

        Returns -1, 0 or 1 as ``a`` is before, equal to, or after ``b``.
        Correct when the true epochs differ by at most :attr:`window`.
        """
        max_sid = self.max_sid
        if max_sid is None:
            return (a > b) - (a < b)
        if not (0 <= a <= max_sid and 0 <= b <= max_sid):
            self._check(a)
            self._check(b)
        if a == b:
            return 0
        delta = (a - b) % self._size
        return 1 if delta <= self._window else -1

    def forward_distance(self, a: int, b: int) -> int:
        """How many increments take wrapped ``a`` to wrapped ``b``."""
        if self.max_sid is None:
            if b < a:
                raise ValueError(f"{b} is behind {a} in an unbounded space")
            return b - a
        self._check(a)
        self._check(b)
        return (b - a) % self.size

    def succ(self, a: int) -> int:
        """The wrapped ID after ``a``."""
        if self.max_sid is None:
            return a + 1
        self._check(a)
        return (a + 1) % self.size

    def unwrap_onto(self, wrapped: int, reference: int) -> int:
        """Map ``wrapped`` to the unwrapped epoch nearest ``reference``.

        ``reference`` is an unwrapped epoch the caller knows is within
        :attr:`window` of the answer (e.g. the control plane's current
        view of the unit's epoch).  Picks the representative of
        ``wrapped``'s congruence class closest to ``reference``.
        """
        if self.max_sid is None:
            return wrapped
        self._check(wrapped)
        size = self.size
        base = reference - (reference % size) + wrapped
        candidates = (base - size, base, base + size)
        best = min(candidates, key=lambda c: (abs(c - reference), c))
        return max(best, 0)

    def _check(self, value: int) -> None:
        if not 0 <= value <= self.max_sid:
            raise ValueError(
                f"wrapped ID {value} out of range [0, {self.max_sid}]")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IdSpace(max_sid={self.max_sid})"
