"""The per-switch snapshot control plane (§6 of the paper).

Speedlight is "a two-tier, mutualistic system in which each [plane] is
responsible for masking the limitations of the other".  The control
plane's jobs, all implemented here:

* **Synchronized initiation** — at a wall-clock instant agreed with the
  observer (interpreted on the *local*, PTP-disciplined clock), inject an
  initiation message into every ingress unit; the message traverses
  CPU → ingress → egress of each port (Figure 6, path 3).
* **Progress tracking** (Figure 7) — consume data-plane notifications,
  maintain an unwrapped-epoch view of every unit's snapshot ID and Last
  Seen array, detect completion, and mark snapshots **inconsistent**
  when the hardware's single-slot updates could not keep intermediate
  epochs correct.
* **Reading and shipping values** — on completion, read the snapshot
  value registers, clear them for wraparound reuse, and ship per-unit
  records to the observer over the management plane.
* **Liveness** — re-send initiations for incomplete snapshots after a
  timeout, optionally poll data-plane registers to recover from dropped
  notifications, and inject probe packets that force snapshot-ID
  propagation across idle switch-to-switch links.

Performance model: notifications arrive over the ASIC→CPU channel into a
bounded receive buffer and are serviced *serially*, each read costing
:attr:`ControlPlaneConfig.notification_service_ns` of CPU time.  This
serial service is the bottleneck behind Figure 10 ("the bottleneck is in
our unoptimized control plane processing latency"); overflowing the
buffer drops notifications, which the Figure 7 logic then handles
conservatively.

Inconsistency marking rule (with channel state).  Our data plane credits
an in-flight packet to the *current* slot (one stateful-ALU op), which is
correct exactly when the packet's epoch is one behind.  Hence, when a
unit's ID advances to ``s``, every epoch in ``(done, s)`` — where
``done`` is the minimum gating Last Seen in the control plane's view —
may have missed channel-state credits or local state and is marked
inconsistent; epoch ``s`` itself stays consistent because subsequent
in-flight credits land in its slot.  If the notification stream shows a
gap (a drop), the marking conservatively extends through ``s``.  This
realises the paper's guarantee: a snapshot is complete and consistent
iff all upstream-neighbor IDs and the local ID differ by at most 1.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from collections.abc import Callable
from typing import Optional

from repro.core.dataplane import SpeedlightUnit
from repro.core.ids import IdSpace
from repro.core.notifications import Notification
from repro.sim.clock import Clock
from repro.sim.engine import Simulator, US, MS
from repro.sim.packet import Packet, PacketType, SnapshotHeader, FlowKey, make_initiation_packet
from repro.sim.switch import BROADCAST_DST, Switch, UnitId


@dataclass
class UnitSnapshotRecord:
    """One unit's contribution to a global snapshot, as read by the CP."""

    unit: UnitId
    epoch: int  # unwrapped
    value: int
    channel_state: Optional[int]
    consistent: bool
    captured_ns: int
    read_ns: int

    @property
    def total_value(self) -> int:
        """Local value plus in-flight channel credits (the network-wide
        conserved quantity for accumulator metrics)."""
        if self.channel_state is None:
            return self.value
        return self.value + self.channel_state


@dataclass
class ControlPlaneConfig:
    """Latency and liveness model of the switch control plane."""

    #: Serial CPU cost of servicing one notification (Thrift/driver).
    notification_service_ns: int = 110 * US
    #: Uniform jitter on the service cost (±).
    notification_jitter_ns: int = 15 * US
    #: Socket receive buffer capacity (notifications); overflow drops.
    buffer_capacity: int = 4096
    #: Notification transport: "socket" is the paper's raw-socket DMA
    #: driver (one CPU wakeup per notification); "digest" models the P4
    #: digest-stream alternative §7.2 mentions and rejects — the ASIC
    #: batches up to ``digest_batch`` notifications (or flushes after
    #: ``digest_timeout_ns``), amortising per-wakeup cost at the price
    #: of added latency.
    notification_transport: str = "socket"
    digest_batch: int = 16
    digest_timeout_ns: int = 500 * US
    #: CPU cost per digest wakeup, plus per-record decode+handling.  The
    #: Figure 7 handler work dominates either transport, so the
    #: per-record cost is only modestly below the socket's 110 µs; the
    #: digest's saving is the amortised wakeup, its price the flush wait.
    digest_service_ns: int = 150 * US
    digest_per_record_ns: int = 85 * US
    #: CPU cost of injecting one initiation message (per port, serial).
    #: Sub-microsecond: the CP writes one descriptor per port into a
    #: batched DMA ring, so a 64-port sweep completes in ~10 µs.
    initiation_cpu_ns: int = 150
    #: Uniform jitter on each injection (±).
    initiation_jitter_ns: int = 100
    #: OS scheduler wake-up latency when the initiation timer fires:
    #: lognormal(median=wakeup_median_ns, sigma=wakeup_sigma) with an
    #: occasional heavy tail, clamped at wakeup_max_ns.  These shapes are
    #: the "OpenNetworkLinux scheduling effects" of §8.2.
    wakeup_median_ns: int = 1_500
    wakeup_sigma: float = 0.6
    wakeup_tail_probability: float = 0.02
    wakeup_tail_max_ns: int = 15_000
    wakeup_max_ns: int = 50_000
    #: Re-send initiations for epochs not locally complete after this.
    reinitiation_timeout_ns: int = 20 * MS
    max_reinitiations: int = 3
    #: With channel state, inject propagation probes this long after each
    #: initiation so structurally idle channels still advance their Last
    #: Seen entries promptly (0 disables; liveness then relies on the
    #: re-initiation path).
    probe_delay_ns: int = 2 * MS
    #: Proactively poll the data-plane registers at this cadence,
    #: recovering from dropped notifications without waiting for any
    #: timeout (§6; 0 disables — the paper's default).  Tuned via
    #: :class:`~repro.core.recovery.RecoveryPolicy`.
    register_poll_interval_ns: int = 0
    seed: int = 11


class NotificationChannel:
    """The bounded, serially-serviced CPU notification queue."""

    def __init__(self, sim: Simulator, rng: random.Random,
                 config: ControlPlaneConfig,
                 handler: Callable[[Notification], None]) -> None:
        self.sim = sim
        self.rng = rng
        self.config = config
        self.handler = handler
        self._queue: deque[Notification] = deque()
        self._busy = False
        #: Per-instance copies of the shared config's capacity, and the
        #: fault knobs (:mod:`repro.faults` mutates these per switch; the
        #: ControlPlaneConfig object is shared deployment-wide and must
        #: stay immutable at runtime).
        self.capacity = config.buffer_capacity
        self.service_scale = 1.0
        self.online = True
        self.received = 0
        self.processed = 0
        self.dropped = 0
        self.max_backlog = 0

    @property
    def backlog(self) -> int:
        return len(self._queue) + (1 if self._busy else 0)

    def deliver(self, notification: Notification) -> None:
        """Called by the switch after the ASIC→CPU latency."""
        self.received += 1
        if not self.online or len(self._queue) >= self.capacity:
            self.dropped += 1
            return
        self._queue.append(notification)
        self.max_backlog = max(self.max_backlog, self.backlog)
        if not self._busy:
            self._service_next()

    def flush_queued(self) -> int:
        """Discard everything queued (crash injection); returns the count
        of notifications lost.  The in-service one dies in :meth:`_finish`."""
        lost = len(self._queue)
        self._queue.clear()
        return lost

    def _service_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        notification = self._queue.popleft()
        jitter = self.rng.randint(-self.config.notification_jitter_ns,
                                  self.config.notification_jitter_ns)
        cost = max(1, self.config.notification_service_ns + jitter)
        if self.service_scale != 1.0:
            cost = max(1, int(cost * self.service_scale))
        self.sim.schedule(cost, self._finish, notification)

    def _finish(self, notification: Notification) -> None:
        if not self.online:
            # The CP process died mid-service: the notification is lost
            # and servicing stops until restart.
            self._busy = False
            self.dropped += 1
            return
        self.processed += 1
        self.handler(notification)
        self._service_next()


class DigestChannel:
    """The P4 digest-stream notification transport (§7.2's alternative).

    The ASIC accumulates notifications into a digest buffer that is
    shipped to the CPU when ``digest_batch`` records are pending or a
    flush timer fires.  The CPU pays one wakeup per digest plus a small
    per-record decode cost — cheaper per notification under load, but
    every record is delayed by up to the batching window, which is why
    the paper found raw sockets "offered significantly better
    performance" for snapshot progress tracking.
    """

    def __init__(self, sim: Simulator, rng: random.Random,
                 config: ControlPlaneConfig,
                 handler: Callable[[Notification], None]) -> None:
        self.sim = sim
        self.rng = rng
        self.config = config
        self.handler = handler
        self._pending: list[Notification] = []
        self._queue: deque[list[Notification]] = deque()
        self._busy = False
        self._flush_event = None
        #: Per-instance fault knobs; see :class:`NotificationChannel`.
        self.capacity = config.buffer_capacity
        self.service_scale = 1.0
        self.online = True
        self.received = 0
        self.processed = 0
        self.dropped = 0
        self.max_backlog = 0
        self.digests_shipped = 0

    @property
    def backlog(self) -> int:
        queued = sum(len(batch) for batch in self._queue)
        return len(self._pending) + queued + (1 if self._busy else 0)

    def deliver(self, notification: Notification) -> None:
        self.received += 1
        if not self.online or self.backlog >= self.capacity:
            self.dropped += 1
            return
        self._pending.append(notification)
        self.max_backlog = max(self.max_backlog, self.backlog)
        if len(self._pending) >= self.config.digest_batch:
            self._ship()
        elif self._flush_event is None:
            self._flush_event = self.sim.schedule(
                self.config.digest_timeout_ns, self._flush)

    def _flush(self) -> None:
        self._flush_event = None
        if self._pending:
            self._ship()

    def _ship(self) -> None:
        if self._flush_event is not None:
            self._flush_event.cancel()
            self._flush_event = None
        self._queue.append(self._pending)
        self._pending = []
        self.digests_shipped += 1
        if not self._busy:
            self._service_next()

    def flush_queued(self) -> int:
        """Discard pending and queued digests (crash injection); returns
        the count of notifications lost."""
        lost = len(self._pending) + sum(len(b) for b in self._queue)
        self._pending = []
        self._queue.clear()
        if self._flush_event is not None:
            self._flush_event.cancel()
            self._flush_event = None
        return lost

    def _service_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        batch = self._queue.popleft()
        cost = (self.config.digest_service_ns +
                len(batch) * self.config.digest_per_record_ns)
        if self.service_scale != 1.0:
            cost = int(cost * self.service_scale)
        self.sim.schedule(max(1, cost), self._finish, batch)

    def _finish(self, batch: list[Notification]) -> None:
        if not self.online:
            self._busy = False
            self.dropped += len(batch)
            return
        for notification in batch:
            self.processed += 1
            self.handler(notification)
        self._service_next()


class _UnitTracker:
    """Control-plane view of one data-plane unit (Figure 7 state)."""

    __slots__ = ("agent", "gating", "ctrl_sid", "ctrl_last_seen",
                 "last_read", "inconsistent")

    def __init__(self, agent: SpeedlightUnit, gating: list[int]) -> None:
        self.agent = agent
        self.gating = list(gating)
        self.ctrl_sid = 0            # unwrapped view of the unit's ID
        self.ctrl_last_seen: dict[int, int] = {c: 0 for c in gating}
        self.last_read = 0           # latest finalized epoch
        self.inconsistent: set[int] = set()

    def gating_min(self) -> int:
        if not self.gating:
            return self.ctrl_sid
        return min(self.ctrl_last_seen.get(c, 0) for c in self.gating)


class SwitchControlPlane:
    """One switch's snapshot control plane."""

    def __init__(self, switch: Switch, clock: Clock, id_space: IdSpace, *,
                 channel_state: bool,
                 config: Optional[ControlPlaneConfig] = None,
                 ship: Optional[Callable[[UnitSnapshotRecord], None]] = None,
                 ideal_dataplane: bool = False) -> None:
        self.switch = switch
        self.sim = switch.sim
        self.clock = clock
        self.ids = id_space
        self.channel_state = channel_state
        #: True when driving the idealised Figure 3 units, which loop over
        #: skipped epochs in the data plane — no inconsistency marking is
        #: needed (ablation support).
        self.ideal_dataplane = ideal_dataplane
        self.config = config or ControlPlaneConfig()
        self.rng = random.Random(f"{self.config.seed}/{switch.name}")
        #: Callback shipping finalized records toward the observer
        #: (installed by the deployment; routed over the mgmt plane).
        self.ship = ship
        self.trackers: dict[UnitId, _UnitTracker] = {}
        if self.config.notification_transport == "digest":
            self.channel = DigestChannel(self.sim, self.rng, self.config,
                                         self._on_notification)
        elif self.config.notification_transport == "socket":
            self.channel = NotificationChannel(self.sim, self.rng,
                                               self.config,
                                               self._on_notification)
        else:
            raise ValueError(
                f"unknown notification transport "
                f"{self.config.notification_transport!r} "
                "(use 'socket' or 'digest')")
        switch.notification_sink = self.channel.deliver
        #: (epoch, unit, data-plane timestamp) for every processed
        #: notification — the synchronization measurements of Figure 9.
        self.progress_log: list[tuple[int, UnitId, int]] = []
        #: Epochs initiated locally, with remaining retry budget.
        self._initiated: dict[int, int] = {}
        self.initiations_sent = 0
        self.reinitiations_sent = 0
        #: Recovery-overhead telemetry (probe packets injected, register
        #: polls performed) — the cost side of the recovery frontier.
        self.probes_sent = 0
        self.polls_performed = 0
        #: Co-resident aggregation-tree relay, when the deployment wires
        #: one (repro.core.aggregation).  It shares this CP's CPU, so
        #: crash/restart toggles it too.
        self.agg_agent = None
        #: Crash-fault state (see :meth:`crash` / :meth:`restart`).
        self._crashed = False
        self.crashes = 0
        self.notifications_lost_to_crash = 0
        if self.config.register_poll_interval_ns > 0:
            # Periodic proactive polls (RecoveryPolicy-driven): strictly
            # opt-in, so the default configuration schedules nothing.
            self.sim.schedule(self.config.register_poll_interval_ns,
                              self._periodic_poll)

    # ------------------------------------------------------------------
    # Registration (deployment wiring)
    # ------------------------------------------------------------------
    def register_unit(self, agent: SpeedlightUnit,
                      gating_channels: list[int]) -> None:
        """Track a data-plane unit.  ``gating_channels`` are the upstream
        channels whose Last Seen gates completion (empty without channel
        state; the CPU channel is never gating, §6)."""
        if agent.unit_id in self.trackers:
            raise ValueError(f"unit {agent.unit_id} already registered")
        self.trackers[agent.unit_id] = _UnitTracker(agent, gating_channels)

    def exclude_channel(self, unit: UnitId, channel: int) -> None:
        """Operator-configured removal of a non-utilized upstream
        neighbor from completion consideration (§6, "Ensuring liveness")."""
        tracker = self.trackers[unit]
        if channel in tracker.gating:
            tracker.gating.remove(channel)
            self._finalize_ready(tracker)

    # ------------------------------------------------------------------
    # Synchronized initiation
    # ------------------------------------------------------------------
    def schedule_initiation(self, epoch: int, at_wall_ns: int) -> None:
        """Register snapshot ``epoch`` to start at wall-clock time
        ``at_wall_ns`` *as read on this switch's local clock* — the clock
        error between switches is precisely the initiation skew that PTP
        bounds."""
        true_ns = self.clock.true_time(at_wall_ns)
        self._initiated.setdefault(epoch, self.config.max_reinitiations)
        self.sim.schedule_at(max(true_ns, self.sim.now),
                             self._fire_initiation, epoch)

    def _fire_initiation(self, epoch: int) -> None:
        if self._crashed:
            return  # a dead CP fires nothing; observer retries cover it
        # OS wake-up jitter before the initiation loop runs.
        wakeup = self._sample_wakeup_ns()
        ports = self._snapshot_ports()
        for k, port in enumerate(ports):
            jitter = self.rng.randint(-self.config.initiation_jitter_ns,
                                      self.config.initiation_jitter_ns)
            delay = wakeup + (k + 1) * self.config.initiation_cpu_ns + jitter
            self.sim.schedule(max(delay, 1), self._inject_initiation,
                              port, epoch)
        self.initiations_sent += 1
        if self.channel_state and self.config.probe_delay_ns > 0:
            self.sim.schedule(self.config.probe_delay_ns, self.inject_probes)
        if self.config.reinitiation_timeout_ns > 0:
            self.sim.schedule(self.config.reinitiation_timeout_ns,
                              self._maybe_reinitiate, epoch)

    def _snapshot_ports(self) -> list[int]:
        return sorted({uid.port for uid in self.trackers})

    def _inject_initiation(self, port: int, epoch: int) -> None:
        packet = make_initiation_packet(self.ids.wrap(epoch),
                                        created_ns=self.sim.now)
        # The message crosses the CPU→ASIC channel, then enters the
        # ingress unit like any packet (Figure 6, path 3).
        # statics: allow[SIM003] models the switch-internal CPU port: the CPU→ASIC channel is inside one switch, not a network link
        self.sim.schedule(self.switch.config.asic_cpu_latency_ns,
                          self.switch.ports[port].ingress.handle_packet,
                          packet)

    def _sample_wakeup_ns(self) -> int:
        cfg = self.config
        if self.rng.random() < cfg.wakeup_tail_probability:
            value = self.rng.uniform(cfg.wakeup_tail_max_ns / 3,
                                     cfg.wakeup_tail_max_ns)
        else:
            value = self.rng.lognormvariate(math.log(cfg.wakeup_median_ns),
                                            cfg.wakeup_sigma)
        return min(int(value), cfg.wakeup_max_ns)

    def _maybe_reinitiate(self, epoch: int) -> None:
        if self._crashed:
            return
        retries = self._initiated.get(epoch, 0)
        if retries <= 0 or self.local_epoch_complete(epoch):
            return
        self._initiated[epoch] = retries - 1
        self.reinitiations_sent += 1
        # "Speedlight control planes will resend initiations for
        # incomplete snapshots after a timeout.  This is safe as
        # duplicate and outdated control plane initiations are ignored
        # by the data plane" (§6).
        self._fire_initiation(epoch)
        if self.channel_state:
            # The usual reason a channel-state snapshot stalls is an idle
            # upstream channel; probes force ID propagation across them.
            self.inject_probes()

    # ------------------------------------------------------------------
    # Liveness helpers
    # ------------------------------------------------------------------
    def inject_probes(self, ttl: int = 1) -> None:
        """Inject snapshot-propagation broadcasts (§6, "Ensuring
        liveness").

        One probe enters each connected ingress unit, tagged with that
        unit's current snapshot ID; the switch floods it to every other
        egress (covering intra-switch channels that the traffic pattern
        leaves idle) and, while ``ttl`` wire hops remain, forwards it to
        snapshot-enabled neighbors (covering idle external channels).

        Safety: a probe enters an ingress via the CPU channel, so it
        never spoofs the external neighbor's Last Seen entry; every Last
        Seen update it causes downstream happens on a channel the probe
        physically traversed behind any in-flight packets.
        """
        if self._crashed:
            return
        for port_index in self._snapshot_ports():
            port = self.switch.ports[port_index]
            agent = port.ingress.snapshot_agent
            if agent is None:
                continue
            for cos in range(self.switch.config.num_cos):
                flow = FlowKey(src=f"{self.switch.name}-cpu",
                               dst=BROADCAST_DST, sport=0, dport=0, proto=255)
                probe = Packet(flow=flow, size_bytes=64, cos=cos,
                               created_ns=self.sim.now, payload=ttl)
                probe.snapshot = SnapshotHeader(sid=agent.sid,
                                                packet_type=PacketType.PROBE)
                self.probes_sent += 1
                # statics: allow[SIM003] probes enter via the switch-internal CPU port, same modeled path as initiations
                self.sim.schedule(self.switch.config.asic_cpu_latency_ns,
                                  port.ingress.handle_packet, probe)

    def _periodic_poll(self) -> None:
        """Recurring register poll at the RecoveryPolicy's cadence.  A
        crashed CP skips the poll but keeps the timer running — the
        process that restarts it re-inherits the cadence."""
        self.poll_registers()
        self.sim.schedule(self.config.register_poll_interval_ns,
                          self._periodic_poll)

    def poll_registers(self) -> None:
        """Proactively resync the control-plane view from the data plane,
        recovering from dropped notifications (§6)."""
        if self._crashed:
            return
        self.polls_performed += 1
        for tracker in self.trackers.values():
            agent = tracker.agent
            now = self.sim.now
            sid_unwrapped = self.ids.unwrap_onto(agent.sid, tracker.ctrl_sid)
            if sid_unwrapped > tracker.ctrl_sid:
                self._advance_sid(tracker, sid_unwrapped, drop_suspected=True)
            for channel in tracker.gating:
                seen = self.ids.unwrap_onto(agent.read_last_seen(channel),
                                            tracker.ctrl_last_seen.get(channel, 0))
                if seen > tracker.ctrl_last_seen.get(channel, 0):
                    tracker.ctrl_last_seen[channel] = seen
            self._finalize_ready(tracker, read_ns=now)

    # ------------------------------------------------------------------
    # Crash faults (see :mod:`repro.faults`)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Kill the control-plane process.

        The notification queue and the control plane's *volatile* view of
        every unit (unwrapped ID, Last Seen) are lost; already-finalized
        epochs (``last_read``) and the inconsistent-epoch markings survive
        — they were shipped / would be re-derived conservatively, and
        clearing :attr:`_UnitTracker.inconsistent` could silently launder
        a bad epoch.  Data-plane registers are unaffected (the ASIC keeps
        snapshotting; only the CPU side dies).
        """
        if self._crashed:
            return
        self._crashed = True
        self.crashes += 1
        self.channel.online = False
        self.notifications_lost_to_crash += self.channel.flush_queued()
        if self.agg_agent is not None:
            # The aggregation relay runs in the same CPU process: its
            # queue and in-progress combines die with the CP.
            self.agg_agent.set_online(False)
        for tracker in self.trackers.values():
            # Register-view loss: restart from the last finalized epoch;
            # the no-lapping window bounds how far the data plane can run
            # ahead, so unwrap_onto recovers the true epochs on restart.
            tracker.ctrl_sid = tracker.last_read
            for channel in tracker.ctrl_last_seen:
                tracker.ctrl_last_seen[channel] = tracker.last_read

    def restart(self) -> None:
        """Bring the control plane back up.

        Recovery is the §6 notification-drop path: one register poll with
        ``drop_suspected`` marking, so every epoch the data plane crossed
        while the CP was dead is flagged inconsistent rather than
        reported with silently-wrong channel state.
        """
        if not self._crashed:
            return
        self._crashed = False
        self.channel.online = True
        if self.agg_agent is not None:
            # Relay back up (empty) before the poll re-finalizes epochs,
            # so the recovered records have somewhere to go.
            self.agg_agent.set_online(True)
        self.poll_registers()

    # ------------------------------------------------------------------
    # Notification handling (Figure 7)
    # ------------------------------------------------------------------
    def _on_notification(self, n: Notification) -> None:
        tracker = self.trackers.get(n.unit)
        if tracker is None:
            return  # unit not under snapshot management
        new_sid = self.ids.unwrap_onto(n.new_sid, tracker.ctrl_sid)
        old_sid = self.ids.unwrap_onto(n.old_sid, tracker.ctrl_sid)
        if new_sid > tracker.ctrl_sid:
            # A dropped notification shows as old_sid ahead of our view.
            drop_suspected = old_sid != tracker.ctrl_sid
            self._advance_sid(tracker, new_sid, drop_suspected=drop_suspected)
        self.progress_log.append((max(new_sid, tracker.ctrl_sid), n.unit,
                                  n.timestamp_ns))
        if self.channel_state and n.channel is not None:
            if n.channel in tracker.ctrl_last_seen or n.channel in tracker.gating:
                current = tracker.ctrl_last_seen.get(n.channel, 0)
                seen = self.ids.unwrap_onto(n.new_last_seen, current)
                if seen > current:
                    tracker.ctrl_last_seen[n.channel] = seen
        self._finalize_ready(tracker)

    def _advance_sid(self, tracker: _UnitTracker, new_sid: int, *,
                     drop_suspected: bool) -> None:
        if self.channel_state and not self.ideal_dataplane:
            done = tracker.gating_min()
            # Epochs that can no longer accumulate complete channel state
            # (see module docstring for the derivation of the bounds).
            upper = new_sid + 1 if drop_suspected else new_sid
            for epoch in range(done + 1, upper):
                if epoch > tracker.last_read:
                    tracker.inconsistent.add(epoch)
        tracker.ctrl_sid = new_sid

    def _finalize_ready(self, tracker: _UnitTracker,
                        read_ns: Optional[int] = None) -> None:
        now = self.sim.now if read_ns is None else read_ns
        if self.channel_state:
            to_read = min(tracker.gating_min(), tracker.ctrl_sid)
        else:
            to_read = tracker.ctrl_sid
        if to_read <= tracker.last_read:
            return
        agent = tracker.agent
        if self.channel_state:
            for epoch in range(tracker.last_read + 1, to_read + 1):
                slot = agent.read_slot(self.ids.wrap(epoch))
                consistent = (epoch not in tracker.inconsistent) and slot.valid
                record = UnitSnapshotRecord(
                    unit=agent.unit_id, epoch=epoch,
                    value=slot.value if slot.valid else 0,
                    channel_state=slot.channel_state if slot.valid else 0,
                    consistent=consistent,
                    captured_ns=slot.captured_ns, read_ns=now)
                agent.clear_slot(self.ids.wrap(epoch))
                tracker.inconsistent.discard(epoch)
                self._ship(record)
        else:
            # Figure 7, OnNotifyNoCS lines 17-22: scan downward, filling
            # skipped (uninitialized) slots from the nearest valid value
            # above — the unit processed no packets in between, so the
            # state is identical.
            records: list[UnitSnapshotRecord] = []
            valid_value: Optional[int] = None
            valid_captured = now
            for epoch in range(to_read, tracker.last_read, -1):
                slot = agent.read_slot(self.ids.wrap(epoch))
                if slot.valid:
                    valid_value = slot.value
                    valid_captured = slot.captured_ns
                agent.clear_slot(self.ids.wrap(epoch))
                if valid_value is None:
                    # Every slot from the top down should be initialized
                    # unless notifications raced a wraparound clear; skip
                    # conservatively (observer retry will cover it).
                    continue
                records.append(UnitSnapshotRecord(
                    unit=agent.unit_id, epoch=epoch, value=valid_value,
                    channel_state=None, consistent=True,
                    captured_ns=valid_captured, read_ns=now))
            for record in reversed(records):
                self._ship(record)
        tracker.last_read = to_read

    def _ship(self, record: UnitSnapshotRecord) -> None:
        if self.ship is not None:
            self.ship(record)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def local_epoch_complete(self, epoch: int) -> bool:
        """Every registered unit has finalized ``epoch``."""
        return all(t.last_read >= epoch for t in self.trackers.values())

    def min_finalized_epoch(self) -> int:
        if not self.trackers:
            return 0
        return min(t.last_read for t in self.trackers.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SwitchControlPlane({self.switch.name}, "
                f"units={len(self.trackers)}, cs={self.channel_state})")
