"""The snapshot observer — a host process orchestrating global snapshots.

"A Synchronized Network Snapshot begins humbly: with a host acting as a
snapshot observer.  The observer broadcasts a request to every device in
the network to take a snapshot of a given metric at a given time in the
future." (§3)

Responsibilities implemented here (§6):

* allocate snapshot epochs and enforce the **no-lapping window** of the
  wrapped ID space out-of-band (stale pending snapshots are abandoned
  before the window could be violated);
* register each snapshot with every device control plane over the
  management plane, naming a wall-clock initiation instant far enough in
  the future for registrations to arrive;
* assemble per-unit records into :class:`~repro.core.snapshot.GlobalSnapshot`
  objects, compute completion, and execute retries;
* time out and exclude failed devices ("If a device fails, it may
  timeout and be excluded from the global snapshot");
* support node attachment: a device registered after a snapshot was
  initiated is not in that snapshot's expected set, so its spurious
  completions are ignored.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import Optional, Protocol, TYPE_CHECKING

from repro.core.control_plane import UnitSnapshotRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.aggregation import AggregateMessage, AggregationTree
from repro.core.ids import IdSpace
from repro.core.snapshot import GlobalSnapshot, SnapshotStatus
from repro.sim.engine import Simulator, MS
from repro.sim.mgmt import ManagementPlane
from repro.sim.switch import UnitId


@dataclass
class ObserverConfig:
    """Observer timing policy."""

    #: How far in the future snapshots are scheduled — must exceed the
    #: worst-case management-plane delivery latency so every control
    #: plane hears about the snapshot before its initiation instant.
    lead_time_ns: int = 5 * MS
    #: Re-send initiations for snapshots incomplete after this long.
    retry_timeout_ns: int = 50 * MS
    max_retries: int = 2
    #: Give up and exclude silent devices after this long.
    device_timeout_ns: int = 250 * MS


class InitiationTarget(Protocol):
    """What the observer requires of a registered device: a way to
    register an initiation.  Satisfied by
    :class:`~repro.core.control_plane.SwitchControlPlane` directly, and
    by :class:`~repro.core.sharded.RemoteControlPlane` proxies that
    forward the call across a shard boundary."""

    def schedule_initiation(self, epoch: int, at_wall_ns: int) -> None:
        ...  # pragma: no cover - protocol definition


class SnapshotObserver:
    """Coordinates network-wide snapshots from a host vantage point."""

    def __init__(self, sim: Simulator, mgmt: ManagementPlane,
                 id_space: IdSpace,
                 config: Optional[ObserverConfig] = None) -> None:
        self.sim = sim
        self.mgmt = mgmt
        self.ids = id_space
        self.config = config or ObserverConfig()
        self.control_planes: dict[str, InitiationTarget] = {}
        self._device_units: dict[str, set[UnitId]] = {}
        self.snapshots: dict[int, GlobalSnapshot] = {}
        self._next_epoch = 1  # epoch 0 is the power-on state, never taken
        self._completion_callbacks: list[Callable[[GlobalSnapshot], None]] = []
        self._resolution_callbacks: list[Callable[[GlobalSnapshot], None]] = []
        #: Retry-round accounting (exposed for the tree-aware retry
        #: cost analysis): messages sent per mechanism across all rounds.
        self.retry_rounds = 0
        self.retry_unicasts = 0
        self.retry_fabric_sends = 0
        self.retry_subtree_sends = 0
        #: Aggregation-fabric hooks (installed by the deployment when an
        #: aggregation tree is wired; see :meth:`attach_fabric`).  All
        #: None/0 means the flat unicast design — byte-identical event
        #: stream to the pre-aggregation observer.
        self.initiate_via_fabric: Optional[Callable[[int, int], None]] = None
        self.relay_tree: Optional["AggregationTree"] = None
        self.retry_subtree: Optional[Callable[[str, int, int], None]] = None
        #: Latest fabric-wide gating-min progress floor (MIN over every
        #: control plane's finalized epoch, reduced bottom-up).
        self.fabric_min_epoch = 0

    # ------------------------------------------------------------------
    # Device registration (including live node attachment, §6)
    # ------------------------------------------------------------------
    def register_device(self, name: str, control_plane: InitiationTarget,
                        units: set[UnitId]) -> None:
        """Add a device to the active set.  Devices registered after a
        snapshot was initiated join from the *next* snapshot on."""
        if name in self.control_planes:
            raise ValueError(f"device {name!r} already registered")
        self.control_planes[name] = control_plane
        self._device_units[name] = set(units)

    def remove_device(self, name: str) -> None:
        self.control_planes.pop(name, None)
        self._device_units.pop(name, None)

    def on_complete(self, callback: Callable[[GlobalSnapshot], None]) -> None:
        """Run ``callback`` whenever a snapshot reaches COMPLETE."""
        self._completion_callbacks.append(callback)

    def on_resolved(self, callback: Callable[[GlobalSnapshot], None]) -> None:
        """Run ``callback`` once per snapshot when it leaves PENDING —
        COMPLETE, PARTIAL, and ABANDONED alike.  This is the streaming
        intake hook: a continuous consumer hears about every epoch's
        final disposition exactly once, in resolution order, without
        polling :attr:`snapshots` at end of run."""
        self._resolution_callbacks.append(callback)

    def _resolve(self, snapshot: GlobalSnapshot,
                 status: SnapshotStatus) -> None:
        """Move ``snapshot`` to a terminal ``status`` and fire hooks.

        Pure-Python callbacks: nothing here schedules events, so wiring
        (or not wiring) consumers leaves the event stream byte-identical.
        """
        snapshot.status = status
        if status is SnapshotStatus.COMPLETE:
            for callback in self._completion_callbacks:
                callback(snapshot)
        for callback in self._resolution_callbacks:
            callback(snapshot)

    def attach_fabric(self, initiate: Optional[Callable[[int, int], None]],
                      tree: Optional["AggregationTree"],
                      retry_subtree: Optional[
                          Callable[[str, int, int], None]] = None) -> None:
        """Wire the aggregation fabric (deployment-installed).

        ``initiate(epoch, at_wall_ns)`` replaces the N-unicast initiation
        loop with one send to the tree root; ``tree`` lets the timeout
        path attribute a silent subtree to its silent relay ancestor.
        ``retry_subtree(device, epoch, at_wall_ns)`` re-initiates one
        device's fabric subtree directly (bypassing its ancestors) —
        when present, retry rounds route around silent relays at
        O(fan-out) cost instead of unicasting to O(devices).
        """
        self.initiate_via_fabric = initiate
        self.relay_tree = tree
        self.retry_subtree = retry_subtree

    # ------------------------------------------------------------------
    # Taking snapshots
    # ------------------------------------------------------------------
    def take_snapshot(self, at_wall_ns: Optional[int] = None,
                      initiators: Optional[list[str]] = None) -> int:
        """Schedule one global snapshot; returns its epoch.

        ``at_wall_ns`` defaults to now + lead time.  Results appear in
        :attr:`snapshots` as the simulation runs.

        ``initiators`` restricts which devices receive the initiation
        (default: all — the paper's multi-initiator design).  With a
        single initiator the snapshot propagates Chandy-Lamport style via
        tagged traffic, which the initiation-strategy ablation uses to
        quantify what multi-initiation buys in synchronization.
        """
        epoch = self._next_epoch
        self._next_epoch += 1
        at_wall = at_wall_ns if at_wall_ns is not None else (
            self.sim.now + self.config.lead_time_ns)
        expected: set[UnitId] = set()
        for units in self._device_units.values():
            expected |= units
        snapshot = GlobalSnapshot(epoch=epoch, requested_wall_ns=at_wall,
                                  expected_units=expected)
        self.snapshots[epoch] = snapshot
        if initiators is None and self.initiate_via_fabric is not None:
            # Aggregation fan-out: one send to the tree root; relays
            # forward down their children.  Explicit initiator subsets
            # (the Chandy-Lamport ablation) keep the unicast path.
            self.initiate_via_fabric(epoch, at_wall)
        else:
            targets = (self.control_planes if initiators is None
                       else {n: self.control_planes[n] for n in initiators})
            for cp in targets.values():
                self.mgmt.send(cp.schedule_initiation, epoch, at_wall)
        # No-lapping enforcement happens when this epoch actually starts
        # circulating: any snapshot more than a window behind must stop
        # being awaited, since its register slots are about to be reused.
        self.sim.schedule_at(max(at_wall, self.sim.now),
                             self._enforce_window, epoch)
        self.sim.schedule_at(at_wall + self.config.retry_timeout_ns,
                             self._check_progress, epoch)
        return epoch

    def schedule_campaign(self, count: int, interval_ns: int,
                          start_wall_ns: Optional[int] = None) -> list[int]:
        """Schedule ``count`` snapshots at a fixed cadence; returns their
        epochs (the measurement-campaign primitive used throughout §8)."""
        if count < 1:
            raise ValueError("count must be positive")
        start = start_wall_ns if start_wall_ns is not None else (
            self.sim.now + self.config.lead_time_ns)
        epochs = []
        for i in range(count):
            epochs.append(self.take_snapshot(at_wall_ns=start + i * interval_ns))
        return epochs

    def _enforce_window(self, initiating_epoch: int) -> None:
        """Abandon stale pending snapshots so wrapped IDs never lap.

        Runs at each epoch's initiation instant: once ``initiating_epoch``
        starts circulating, any snapshot more than an ID-space window
        behind it can no longer be compared correctly in the data plane
        (§5.3) — the observer stops awaiting it.  Campaigns whose
        completion keeps pace with their cadence are never affected,
        regardless of how many epochs were pre-scheduled.
        """
        floor = initiating_epoch - self.ids.window + 1
        if floor <= 0:
            return
        for epoch, snapshot in self.snapshots.items():
            if epoch < floor and snapshot.status is SnapshotStatus.PENDING:
                self._resolve(snapshot, SnapshotStatus.ABANDONED)

    # ------------------------------------------------------------------
    # Record intake
    # ------------------------------------------------------------------
    def on_unit_record(self, record: UnitSnapshotRecord) -> None:
        """Entry point for records shipped by control planes (wired by
        the deployment through the management plane)."""
        snapshot = self.snapshots.get(record.epoch)
        if snapshot is None:
            return  # epoch predates this observer or was never scheduled
        if snapshot.status in (SnapshotStatus.ABANDONED,):
            return
        accepted = snapshot.add_record(record)
        if accepted and snapshot.complete and snapshot.status is SnapshotStatus.PENDING:
            self._resolve(snapshot, SnapshotStatus.COMPLETE)

    def on_aggregate(self, message: "AggregateMessage") -> None:
        """Entry point for tree-aggregated messages (the fabric intake's
        handler): unpack the batched unit records and fold the subtree's
        gating-min progress floor into the fabric-wide view."""
        if message.min_finalized > self.fabric_min_epoch:
            self.fabric_min_epoch = message.min_finalized
        for record in message.records:
            self.on_unit_record(record)

    # ------------------------------------------------------------------
    # Progress checking, retries, device exclusion
    # ------------------------------------------------------------------
    def _check_progress(self, epoch: int) -> None:
        snapshot = self.snapshots[epoch]
        if snapshot.status is not SnapshotStatus.PENDING:
            return
        if snapshot.retries < self.config.max_retries:
            snapshot.retries += 1
            self.retry_rounds += 1
            # Re-register the initiation: duplicate initiations are
            # ignored by data planes that already advanced, and they
            # recover lost registration/initiation messages.  The loss
            # being recovered may be a dead relay inside the tree, so a
            # retry must never depend on the silent part of the fabric:
            # with a tree wired, healthy subtrees are re-covered by one
            # send to the root and each stranded subtree is rerouted
            # around its silent relay; without one (or when silence
            # gives the tree nothing to route around), every control
            # plane is unicast directly.
            at_wall = self.sim.now + self.config.lead_time_ns
            if not self._retry_around_silence(snapshot, at_wall):
                for cp in self.control_planes.values():
                    self.mgmt.send(cp.schedule_initiation, epoch, at_wall)
                    self.retry_unicasts += 1
            self.sim.schedule(self.config.retry_timeout_ns,
                              self._check_progress, epoch)
            return
        # Out of retries.  "If a device fails, it may timeout and be
        # excluded" (§6) — but only after the full device timeout has
        # elapsed since the snapshot's scheduled instant, so a slow
        # device is not confused with a dead one.  The deadline check
        # runs at most once: when it fires, now >= deadline.
        deadline = snapshot.requested_wall_ns + self.config.device_timeout_ns
        if self.sim.now < deadline:
            self.sim.schedule_at(deadline, self._check_progress, epoch)
            return
        # Exclude devices that never reported anything.  Sorted so the
        # exclusion order (and any log/audit keyed on it) is independent
        # of the hash seed.
        silent = {u.device for u in snapshot.missing_units}
        reported = {u.device for u in snapshot.records}
        silent_devices = sorted(silent - reported)
        silent_set = set(silent_devices)
        for device in silent_devices:
            snapshot.exclude_device(device,
                                    reason=self._silence_reason(device,
                                                                silent_set))
        if snapshot.complete:
            self._resolve(snapshot, SnapshotStatus.COMPLETE)
        else:
            self._resolve(snapshot, SnapshotStatus.PARTIAL)

    def _retry_around_silence(self, snapshot: GlobalSnapshot,
                              at_wall_ns: int) -> bool:
        """Tree-aware retry routing; returns True when it handled the
        round (False falls back to the full unicast sweep).

        One fabric send to the root re-initiates every subtree whose
        relays are alive (duplicate initiations are ignored).  Each
        *highest* silent device — the relay whose silence strands its
        descendants, the same attribution :meth:`_silence_reason` pins
        exclusions on — then gets a direct unicast (it may merely be
        slow) while its children are re-initiated subtree-by-subtree,
        bypassing the dead relay on the way down.  Cost per round is
        1 + culprits x (1 + fan-out) instead of O(devices).
        """
        tree = self.relay_tree
        if (tree is None or self.initiate_via_fabric is None
                or self.retry_subtree is None):
            return False
        reported = {u.device for u in snapshot.records}
        silent_devices = sorted({u.device for u in snapshot.missing_units}
                                - reported)
        if not silent_devices or not reported:
            # Nothing attributably silent (records lost from devices
            # that did report), or *everything* silent (the root itself
            # may be down): no subtree to route around — unicast.
            return False
        silent_set = set(silent_devices)
        self.initiate_via_fabric(snapshot.epoch, at_wall_ns)
        self.retry_fabric_sends += 1
        for device in silent_devices:
            if any(a in silent_set for a in tree.ancestors(device)):
                continue  # stranded descendant: its culprit's round covers it
            cp = self.control_planes.get(device)
            if cp is not None:
                self.mgmt.send(cp.schedule_initiation,
                               snapshot.epoch, at_wall_ns)
                self.retry_unicasts += 1
            for child in tree.children.get(device, ()):
                self.retry_subtree(child, snapshot.epoch, at_wall_ns)
                self.retry_subtree_sends += 1
        return True

    def _silence_reason(self, device: str, silent_set: set[str]) -> str:
        """Attribute one silent device's exclusion.

        With an aggregation tree, a dead relay silences its entire
        subtree — the descendants' control planes may be perfectly
        healthy, their records merely lost at the relay.  Marking them
        plain ``"silent"`` would blame the wrong devices, so the timeout
        path pins the silence on the highest silent ancestor instead:
        the relay itself stays ``"silent"``, everything beneath it reads
        ``"relay:<ancestor>"``.
        """
        if self.relay_tree is None or device not in self.relay_tree.parent:
            return "silent"
        culprit: Optional[str] = None
        for ancestor in self.relay_tree.ancestors(device):
            if ancestor in silent_set:
                culprit = ancestor  # keep walking: highest wins
        if culprit is None:
            return "silent"
        return f"relay:{culprit}"

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def snapshot(self, epoch: int) -> GlobalSnapshot:
        return self.snapshots[epoch]

    def completed_snapshots(self, require_consistent: bool = False) -> list[GlobalSnapshot]:
        """All COMPLETE snapshots, in epoch order."""
        result = [s for _e, s in sorted(self.snapshots.items())
                  if s.status is SnapshotStatus.COMPLETE]
        if require_consistent:
            result = [s for s in result if s.consistent]
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        done = sum(1 for s in self.snapshots.values()
                   if s.status is SnapshotStatus.COMPLETE)
        return (f"SnapshotObserver(devices={len(self.control_planes)}, "
                f"snapshots={len(self.snapshots)}, complete={done})")
