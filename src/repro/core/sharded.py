"""Speedlight on a sharded network: one deployment slice per shard.

The paper's deployment is already space-parallel in spirit — "control
planes are responsible for their own switch" (§8.2) and the observer is
just a host.  Sharding the simulator therefore maps cleanly:

* every shard deploys counters, agents, and control planes on its own
  switches, exactly like the single-process
  :class:`~repro.core.deployment.SpeedlightDeployment`;
* the **observer lives in shard 0**.  Control planes in other shards
  ship their :class:`~repro.core.control_plane.UnitSnapshotRecord`\\ s to
  the ``"observer"`` mailbox over the cross-shard batch transport — the
  sender samples its usual management-plane latency locally, and the
  transport adds at least the plan's lookahead on top, so delivery obeys
  the conservative horizon bound;
* shard 0 registers every *remote* switch with its observer through a
  :class:`RemoteControlPlane` proxy.  The observer only ever calls
  ``schedule_initiation`` on registered devices
  (:class:`~repro.core.observer.InitiationTarget`), so the proxy simply
  forwards ``(epoch, at_wall_ns)`` to the owning shard's ``cp:<switch>``
  mailbox.  Initiation is wall-clock-addressed ("take the snapshot at
  time T"), so the extra transport latency only consumes lead time — it
  does not skew the snapshot instant.

Channel state is not supported sharded: in-flight accumulation gates on
cross-switch Last Seen state whose gating sets the per-shard deployment
cannot see across the cut.  The clean protocol path (the §8 scaling
study) is exactly what sharding is for — bigger fabrics, more switches.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.control_plane import SwitchControlPlane, UnitSnapshotRecord
from repro.core.deployment import DeploymentConfig, SpeedlightDeployment
from repro.sim.shard import ShardWorker
from repro.sim.switch import Direction, UnitId

__all__ = ["OBSERVER_SHARD", "RemoteControlPlane",
           "ShardedSpeedlightDeployment"]

#: The shard that hosts the snapshot observer.
OBSERVER_SHARD = 0

#: Mailbox names of the cross-shard control plane.
OBSERVER_MAILBOX = "observer"


def _cp_mailbox(switch_name: str) -> str:
    return f"cp:{switch_name}"


class RemoteControlPlane:
    """Shard-0 proxy for a control plane owned by another shard.

    The observer's ``mgmt.send(cp.schedule_initiation, epoch, at_wall)``
    lands here after the locally sampled management latency; the proxy
    forwards over the batch transport, which reserves the plan's
    lookahead.  Total delivery latency is therefore
    ``mgmt latency + max(0, lookahead)`` — still far below any sane
    observer lead time.
    """

    def __init__(self, switch_name: str, worker: ShardWorker) -> None:
        self.switch_name = switch_name
        self._worker = worker

    def schedule_initiation(self, epoch: int, at_wall_ns: int) -> None:
        self._worker.send_ctrl(_cp_mailbox(self.switch_name),
                               (epoch, at_wall_ns))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RemoteControlPlane({self.switch_name!r} @ shard "
                f"{self._worker.plan.assignment[self.switch_name]})")


def _make_initiation_handler(cp: SwitchControlPlane):
    def handle(payload: Any) -> None:
        epoch, at_wall_ns = payload
        cp.schedule_initiation(epoch, at_wall_ns)
    return handle


class ShardedSpeedlightDeployment(SpeedlightDeployment):
    """The per-shard slice of one logical Speedlight deployment.

    Construct one inside every shard's ``setup`` callable.  On shard 0
    (:data:`OBSERVER_SHARD`) the deployment's :attr:`observer` is *the*
    observer — drive campaigns there; on other shards the inherited
    observer exists but is inert, and :meth:`take_snapshot` /
    :meth:`schedule_campaign` refuse to run.

    With a one-shard plan this degenerates to the plain deployment —
    same wiring, same event stream.
    """

    def __init__(self, worker: ShardWorker,
                 config: Optional[DeploymentConfig] = None,
                 **config_kwargs) -> None:
        if config is None and config_kwargs:
            config = DeploymentConfig(**config_kwargs)
            config_kwargs = {}
        self.worker = worker
        self.sharded = worker.plan.num_shards > 1
        self.is_observer_shard = (not self.sharded
                                  or worker.shard_id == OBSERVER_SHARD)
        if self.sharded and config is not None:
            if config.channel_state:
                raise ValueError(
                    "channel state is not supported on a sharded "
                    "deployment (cross-shard gating sets are invisible "
                    "to the per-shard slices); run shards=1 or disable "
                    "channel_state")
            if config.switches is not None:
                raise ValueError(
                    "sharded deployments are full deployments; partial "
                    "deployment (§10) requires shards=1")
        super().__init__(worker.network, config, **config_kwargs)
        if not self.sharded:
            return
        if self.is_observer_shard:
            worker.register_mailbox(OBSERVER_MAILBOX,
                                    self.observer.on_unit_record)
            self._register_remote_devices()
        else:
            for name, cp in self.control_planes.items():
                worker.register_mailbox(_cp_mailbox(name),
                                        _make_initiation_handler(cp))

    # ------------------------------------------------------------------
    # Cross-shard wiring
    # ------------------------------------------------------------------
    def _make_shipper(self):
        if not getattr(self, "sharded", False) or self.is_observer_shard:
            return super()._make_shipper()
        worker = self.worker
        mgmt = self.network.mgmt

        def ship(record: UnitSnapshotRecord) -> None:
            # Same management-plane latency a local shipper would pay,
            # then the batch transport (which enforces >= lookahead).
            worker.send_ctrl(OBSERVER_MAILBOX, record,
                             extra_ns=mgmt.one_way_latency_ns())

        return ship

    def _register_remote_devices(self) -> None:
        """Give shard 0's observer the full device census: remote
        switches appear behind :class:`RemoteControlPlane` proxies with
        unit sets derived from the full topology (every builder connects
        every port, so the connected set is ``range(degree)``)."""
        plan = self.worker.plan
        topo = self.network.topology
        for name in topo.switches:
            if plan.assignment[name] == self.worker.shard_id:
                continue
            proxy = RemoteControlPlane(name, self.worker)
            units = {UnitId(name, port, direction)
                     for port in range(topo.degree(name))
                     for direction in (Direction.INGRESS, Direction.EGRESS)}
            self.observer.register_device(name, proxy, units)

    # ------------------------------------------------------------------
    # Guard rails
    # ------------------------------------------------------------------
    def take_snapshot(self, at_wall_ns: Optional[int] = None) -> int:
        if not self.is_observer_shard:
            raise RuntimeError("snapshots are driven from the observer "
                               f"shard (shard {OBSERVER_SHARD})")
        return super().take_snapshot(at_wall_ns)

    def schedule_campaign(self, count: int, interval_ns: int,
                          start_wall_ns: Optional[int] = None) -> list[int]:
        if not self.is_observer_shard:
            raise RuntimeError("campaigns are driven from the observer "
                               f"shard (shard {OBSERVER_SHARD})")
        return super().schedule_campaign(count, interval_ns, start_wall_ns)
