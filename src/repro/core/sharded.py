"""Speedlight on a sharded network: one deployment slice per shard.

The paper's deployment is already space-parallel in spirit — "control
planes are responsible for their own switch" (§8.2) and the observer is
just a host.  Sharding the simulator therefore maps cleanly:

* every shard deploys counters, agents, and control planes on its own
  switches, exactly like the single-process
  :class:`~repro.core.deployment.SpeedlightDeployment`;
* the **observer lives in shard 0**.  Control planes in other shards
  ship their :class:`~repro.core.control_plane.UnitSnapshotRecord`\\ s to
  the ``"observer"`` mailbox over the cross-shard batch transport — the
  sender samples its usual management-plane latency locally, and the
  transport adds at least the plan's lookahead on top, so delivery obeys
  the conservative horizon bound;
* shard 0 registers every *remote* switch with its observer through a
  :class:`RemoteControlPlane` proxy.  The observer only ever calls
  ``schedule_initiation`` on registered devices
  (:class:`~repro.core.observer.InitiationTarget`), so the proxy simply
  forwards ``(epoch, at_wall_ns)`` to the owning shard's ``cp:<switch>``
  mailbox.  Initiation is wall-clock-addressed ("take the snapshot at
  time T"), so the extra transport latency only consumes lead time — it
  does not skew the snapshot instant.

Channel state is not supported sharded: in-flight accumulation gates on
cross-switch Last Seen state whose gating sets the per-shard deployment
cannot see across the cut.  The clean protocol path (the §8 scaling
study) is exactly what sharding is for — bigger fabrics, more switches.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.aggregation import (AggregateMessage, AggregationAgent,
                                    AggregationConfig, RelayChannel)
from repro.core.control_plane import SwitchControlPlane, UnitSnapshotRecord
from repro.core.deployment import DeploymentConfig, SpeedlightDeployment
from repro.sim.shard import ShardWorker
from repro.sim.switch import Direction, UnitId

__all__ = ["OBSERVER_SHARD", "RemoteControlPlane",
           "ShardedSpeedlightDeployment"]

#: The shard that hosts the snapshot observer.
OBSERVER_SHARD = 0

#: Mailbox names of the cross-shard control plane.
OBSERVER_MAILBOX = "observer"

#: Cross-shard intake for aggregation-root messages (observer shard).
AGG_OBSERVER_MAILBOX = "agg-observer"


def _cp_mailbox(switch_name: str) -> str:
    return f"cp:{switch_name}"


def _agg_mailbox(switch_name: str) -> str:
    return f"agg:{switch_name}"


class RemoteControlPlane:
    """Shard-0 proxy for a control plane owned by another shard.

    The observer's ``mgmt.send(cp.schedule_initiation, epoch, at_wall)``
    lands here after the locally sampled management latency; the proxy
    forwards over the batch transport, which reserves the plan's
    lookahead.  Total delivery latency is therefore
    ``mgmt latency + max(0, lookahead)`` — still far below any sane
    observer lead time.
    """

    def __init__(self, switch_name: str, worker: ShardWorker) -> None:
        self.switch_name = switch_name
        self._worker = worker

    def schedule_initiation(self, epoch: int, at_wall_ns: int) -> None:
        self._worker.send_ctrl(_cp_mailbox(self.switch_name),
                               (epoch, at_wall_ns))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RemoteControlPlane({self.switch_name!r} @ shard "
                f"{self._worker.plan.assignment[self.switch_name]})")


def _make_initiation_handler(cp: SwitchControlPlane):
    def handle(payload: Any) -> None:
        epoch, at_wall_ns = payload
        cp.schedule_initiation(epoch, at_wall_ns)
    return handle


def _make_agg_handler(agent: AggregationAgent):
    """Dispatch one agent's ``agg:<switch>`` mailbox: upward aggregates
    enter its relay channel, downward ``("init", ...)`` tuples enter the
    initiation fan-out."""
    def handle(payload: Any) -> None:
        if isinstance(payload, AggregateMessage):
            agent.channel.deliver(payload)
        else:
            _tag, epoch, at_wall_ns = payload
            agent.on_initiation(epoch, at_wall_ns)
    return handle


class ShardedSpeedlightDeployment(SpeedlightDeployment):
    """The per-shard slice of one logical Speedlight deployment.

    Construct one inside every shard's ``setup`` callable.  On shard 0
    (:data:`OBSERVER_SHARD`) the deployment's :attr:`observer` is *the*
    observer — drive campaigns there; on other shards the inherited
    observer exists but is inert, and :meth:`take_snapshot` /
    :meth:`schedule_campaign` refuse to run.

    With a one-shard plan this degenerates to the plain deployment —
    same wiring, same event stream.
    """

    def __init__(self, worker: ShardWorker,
                 config: Optional[DeploymentConfig] = None,
                 **config_kwargs) -> None:
        if config is None and config_kwargs:
            config = DeploymentConfig(**config_kwargs)
            config_kwargs = {}
        self.worker = worker
        self.sharded = worker.plan.num_shards > 1
        self.is_observer_shard = (not self.sharded
                                  or worker.shard_id == OBSERVER_SHARD)
        if self.sharded and config is not None:
            if config.channel_state:
                raise ValueError(
                    "channel state is not supported on a sharded "
                    "deployment (cross-shard gating sets are invisible "
                    "to the per-shard slices); run shards=1 or disable "
                    "channel_state")
            if config.switches is not None:
                raise ValueError(
                    "sharded deployments are full deployments; partial "
                    "deployment (§10) requires shards=1")
        super().__init__(worker.network, config, **config_kwargs)
        if not self.sharded:
            return
        if self.is_observer_shard:
            worker.register_mailbox(OBSERVER_MAILBOX,
                                    self.observer.on_unit_record)
            self._register_remote_devices()
        else:
            for name, cp in self.control_planes.items():
                worker.register_mailbox(_cp_mailbox(name),
                                        _make_initiation_handler(cp))

    # ------------------------------------------------------------------
    # Cross-shard wiring
    # ------------------------------------------------------------------
    def _make_shipper(self, name: str):
        if not getattr(self, "sharded", False) or self.is_observer_shard:
            return super()._make_shipper(name)
        worker = self.worker
        mgmt = self.network.mgmt
        sinks = self._record_sinks

        def ship(record: UnitSnapshotRecord) -> None:
            sink = sinks.get(name)
            if sink is not None:
                sink(record)  # aggregation fabric (local agent)
                return
            # Same management-plane latency a local shipper would pay,
            # then the batch transport (which enforces >= lookahead).
            worker.send_ctrl(OBSERVER_MAILBOX, record,
                             extra_ns=mgmt.one_way_latency_ns())

        return ship

    def _register_remote_devices(self) -> None:
        """Give shard 0's observer the full device census: remote
        switches appear behind :class:`RemoteControlPlane` proxies with
        unit sets derived from the full topology (every builder connects
        every port, so the connected set is ``range(degree)``)."""
        plan = self.worker.plan
        topo = self.network.topology
        for name in topo.switches:
            if plan.assignment[name] == self.worker.shard_id:
                continue
            proxy = RemoteControlPlane(name, self.worker)
            units = {UnitId(name, port, direction)
                     for port in range(topo.degree(name))
                     for direction in (Direction.INGRESS, Direction.EGRESS)}
            self.observer.register_device(name, proxy, units)

    # ------------------------------------------------------------------
    # Aggregation across the cut
    # ------------------------------------------------------------------
    # Every shard builds the *same* tree from the full topology and
    # hosts agents for its own switches only.  Tree edges that stay
    # inside a shard use the plain management plane; edges crossing the
    # cut ride the batch transport through ``agg:<switch>`` mailboxes
    # (upward aggregates and downward initiations alike), and the root's
    # messages reach shard 0's intake directly or via the
    # ``agg-observer`` mailbox.  Construction is deterministic, so all
    # shards agree on the tree without exchanging a bit.

    def _agg_participants(self) -> list[str]:
        if not self.sharded:
            return super()._agg_participants()
        # The tree spans the whole logical deployment, not this slice
        # (sharded deployments are always full deployments).
        return sorted(self.network.topology.switches)

    def _agg_make_intake(self, cfg: AggregationConfig):
        if not self.sharded or self.is_observer_shard:
            intake = super()._agg_make_intake(cfg)
            if self.sharded:
                self.worker.register_mailbox(AGG_OBSERVER_MAILBOX,
                                             intake.deliver)
            return intake
        return None  # only the observer shard services root messages

    def _agg_root_sender(self, intake):
        if intake is not None:
            return super()._agg_root_sender(intake)
        worker = self.worker
        mgmt = self.network.mgmt

        def send(message: AggregateMessage) -> None:
            worker.send_ctrl(AGG_OBSERVER_MAILBOX, message,
                             extra_ns=mgmt.one_way_latency_ns())

        return send

    def _agg_parent_sender(self, parent: str,
                           agents: dict[str, AggregationAgent]):
        if parent in agents:
            return super()._agg_parent_sender(parent, agents)
        worker = self.worker
        mgmt = self.network.mgmt
        mailbox = _agg_mailbox(parent)

        def send(message: AggregateMessage) -> None:
            worker.send_ctrl(mailbox, message,
                             extra_ns=mgmt.one_way_latency_ns())

        return send

    def _agg_init_forwarder(self, agents: dict[str, AggregationAgent]):
        if not self.sharded:
            return super()._agg_init_forwarder(agents)
        worker = self.worker
        mgmt = self.network.mgmt

        def forward(child: str, epoch: int, at_wall_ns: int) -> None:
            agent = agents.get(child)
            if agent is not None:
                mgmt.send(agent.on_initiation, epoch, at_wall_ns)
            else:
                worker.send_ctrl(_agg_mailbox(child),
                                 ("init", epoch, at_wall_ns),
                                 extra_ns=mgmt.one_way_latency_ns())

        return forward

    def _agg_finalize(self, tree, agents: dict[str, AggregationAgent]) -> None:
        if not self.sharded:
            super()._agg_finalize(tree, agents)
            return
        for name in sorted(agents):
            self.worker.register_mailbox(_agg_mailbox(name),
                                         _make_agg_handler(agents[name]))
        if not self.is_observer_shard:
            return
        root_agent = agents.get(tree.root)
        mgmt = self.network.mgmt
        worker = self.worker
        if root_agent is not None:
            def initiate(epoch: int, at_wall_ns: int) -> None:
                mgmt.send(root_agent.on_initiation, epoch, at_wall_ns)
        else:
            mailbox = _agg_mailbox(tree.root)

            def initiate(epoch: int, at_wall_ns: int) -> None:
                worker.send_ctrl(mailbox, ("init", epoch, at_wall_ns),
                                 extra_ns=mgmt.one_way_latency_ns())

        def retry_subtree(device: str, epoch: int, at_wall_ns: int) -> None:
            agent = agents.get(device)
            if agent is not None:
                mgmt.send(agent.on_initiation, epoch, at_wall_ns)
            else:
                worker.send_ctrl(_agg_mailbox(device),
                                 ("init", epoch, at_wall_ns),
                                 extra_ns=mgmt.one_way_latency_ns())

        self.observer.attach_fabric(initiate, tree,
                                    retry_subtree=retry_subtree)

    # ------------------------------------------------------------------
    # Guard rails
    # ------------------------------------------------------------------
    def take_snapshot(self, at_wall_ns: Optional[int] = None) -> int:
        if not self.is_observer_shard:
            raise RuntimeError("snapshots are driven from the observer "
                               f"shard (shard {OBSERVER_SHARD})")
        return super().take_snapshot(at_wall_ns)

    def schedule_campaign(self, count: int, interval_ns: int,
                          start_wall_ns: Optional[int] = None) -> list[int]:
        if not self.is_observer_shard:
            raise RuntimeError("campaigns are driven from the observer "
                               f"shard (shard {OBSERVER_SHARD})")
        return super().schedule_campaign(count, interval_ns, start_wall_ns)
