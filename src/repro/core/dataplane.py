"""Speedlight's hardware-constrained data-plane snapshot unit.

This implements the per-processing-unit logic of Figures 4 and 5 with
the Tofino limitations of §5.3 modelled explicitly:

* **No intermediate-ID loops.**  When a packet's snapshot ID is ahead of
  the local ID by more than one, the unit saves local state into the
  *packet's* slot only; skipped slots never receive local state.  The
  control plane detects the skip from the notification and reacts
  (mark-inconsistent with channel state, value inference without).
* **Single-slot channel-state updates.**  An in-flight packet (carried ID
  behind the local ID) credits the channel state of the *current* slot
  only — one stateful-ALU operation.  That credit is exactly right when
  the gap is one (the common case) and leaves the intermediate slots
  wrong when it is larger, which is why the control plane marks those
  slots inconsistent (§6, Figure 7 case 1).
* **Bounded registers.**  Snapshot IDs and the slot array wrap
  (:class:`~repro.core.ids.IdSpace`); the observer enforces the
  no-lapping window out-of-band.
* **Notifications.**  Any change to the local ID or a Last Seen entry
  emits a :class:`~repro.core.notifications.Notification` carrying the
  old and new values of both (§5.3).

The unit is substrate-agnostic: it sees packets through the
``SnapshotAgent`` protocol of :mod:`repro.sim.switch` and reads the
metric through a bound ``value_fn`` (the register the operator chose to
snapshot).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import Optional

from repro.core.ids import IdSpace
from repro.core.notifications import Notification
from repro.sim.packet import Packet, PacketType
from repro.sim.switch import UnitId

#: Cached enum member for identity checks on the per-packet path.
_DATA = PacketType.DATA


@dataclass
class SnapshotSlot:
    """One entry of the Snapshot Value register array.

    ``valid`` models the hardware valid bit: the control plane clears it
    after reading so a slot reused post-wraparound is distinguishable
    from a stale one.  ``channel_state`` accumulates in-flight credits
    (metric-specific; packet counts by default).
    """

    valid: bool = False
    value: int = 0
    channel_state: int = 0
    captured_ns: int = 0

    def clear(self) -> None:
        self.valid = False
        self.value = 0
        self.channel_state = 0
        self.captured_ns = 0


class SpeedlightUnit:
    """The per-unit data-plane snapshot logic (Figures 4 & 5)."""

    def __init__(self, unit_id: UnitId, id_space: IdSpace,
                 value_fn: Callable[[], int], *,
                 channel_state: bool = False,
                 notify: Optional[Callable[[Notification], None]] = None,
                 in_flight_value_fn: Optional[Callable[[Packet], int]] = None) -> None:
        self.unit_id = unit_id
        self.ids = id_space
        self._cmp = id_space.cmp  # bound once; called 1-2x per packet
        self.value_fn = value_fn
        self.channel_state = channel_state
        self.notify = notify
        #: Contribution of one in-flight packet to channel state.  The
        #: default (1 per packet) suits packet counts; byte counts pass
        #: ``lambda pkt: pkt.size_bytes``.
        self.in_flight_value_fn = in_flight_value_fn or (lambda pkt: 1)

        self._sid = 0  # wrapped; registers power up at zero (§6)
        self.last_seen: dict[int, int] = {}
        if id_space.size is not None:
            self._slots: dict[int, SnapshotSlot] = {
                i: SnapshotSlot() for i in range(id_space.size)}
        else:
            self._slots = {}
        self.packets_seen = 0
        self.notifications_emitted = 0

    # ------------------------------------------------------------------
    # SnapshotAgent protocol
    # ------------------------------------------------------------------
    @property
    def sid(self) -> int:
        """Current (wrapped) snapshot ID register."""
        return self._sid

    def process_packet(self, packet: Packet, channel_id: int, now_ns: int) -> int:
        """One pipeline pass of the snapshot match-action stages."""
        self.packets_seen += 1
        header = packet.snapshot
        assert header is not None, "snapshot unit fed a headerless packet"
        old_sid = self._sid
        header_sid = header.sid
        # The common case — the packet carries the current epoch — skips
        # the circular comparison entirely (cmp == 0 iff the IDs are
        # equal, and ``_sid`` is always in range).
        if header_sid != old_sid:
            if self._cmp(header_sid, old_sid) > 0:
                # New snapshot: save local state into the packet's slot.
                # The hardware cannot loop over skipped intermediate
                # slots.
                self._capture(header_sid, now_ns)
                self._sid = header_sid
            elif self.channel_state and header.packet_type is _DATA:
                # In-flight packet: one register op credits the current
                # slot.  (Initiations are "never considered an in-flight
                # packet", §6.)
                slot = self._slot(old_sid)
                slot.channel_state += self.in_flight_value_fn(packet)

        old_ls: Optional[int] = None
        new_ls: Optional[int] = None
        ls_changed = False
        if self.channel_state:
            old_ls = self.last_seen.get(channel_id, 0)
            new_ls = header_sid
            # Last Seen tracks the most recent epoch observed on the
            # channel; it never moves backwards.
            if new_ls != old_ls and self._cmp(new_ls, old_ls) > 0:
                self.last_seen[channel_id] = new_ls
                ls_changed = True
            else:
                new_ls = old_ls

        if old_sid != self._sid or ls_changed:
            self._emit(Notification(
                unit=self.unit_id, old_sid=old_sid, new_sid=self._sid,
                timestamp_ns=now_ns,
                channel=channel_id if self.channel_state else None,
                old_last_seen=old_ls, new_last_seen=new_ls))
        return self._sid

    # ------------------------------------------------------------------
    # Register plumbing
    # ------------------------------------------------------------------
    def _slot(self, wrapped_sid: int) -> SnapshotSlot:
        slot = self._slots.get(wrapped_sid)
        if slot is None:  # unbounded spaces allocate lazily
            slot = self._slots[wrapped_sid] = SnapshotSlot()
        return slot

    def _capture(self, wrapped_sid: int, now_ns: int) -> None:
        slot = self._slot(wrapped_sid)
        slot.valid = True
        slot.value = self.value_fn()
        slot.channel_state = 0
        slot.captured_ns = now_ns

    def _emit(self, notification: Notification) -> None:
        self.notifications_emitted += 1
        if self.notify is not None:
            self.notify(notification)

    # ------------------------------------------------------------------
    # Control-plane register access
    # ------------------------------------------------------------------
    def read_slot(self, wrapped_sid: int) -> SnapshotSlot:
        """Register read of one Snapshot Value entry (PCIe access)."""
        return self._slot(wrapped_sid)

    def clear_slot(self, wrapped_sid: int) -> None:
        """Reset a slot's valid bit after the control plane consumed it,
        making the slot safe for reuse after ID wraparound."""
        self._slot(wrapped_sid).clear()

    def read_last_seen(self, channel_id: int) -> int:
        return self.last_seen.get(channel_id, 0)

    def poll_state(self) -> dict[str, int]:
        """Proactive register poll used for notification-drop recovery
        (§6, "Ensuring liveness")."""
        state = {"sid": self._sid}
        for channel, value in self.last_seen.items():
            state[f"last_seen[{channel}]"] = value
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpeedlightUnit({self.unit_id}, sid={self._sid})"
