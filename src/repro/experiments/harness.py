"""Shared experiment utilities: text tables, ASCII CDF plots, and
campaign helpers."""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.analysis.stats import Cdf
from repro.core.deployment import SpeedlightDeployment
from repro.sim.network import Network


class TextTable:
    """Minimal aligned-column text table for experiment reports."""

    def __init__(self, columns: Sequence[str]) -> None:
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add(self, *cells) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(f"expected {len(self.columns)} cells, "
                             f"got {len(cells)}")
        self.rows.append([self._fmt(c) for c in cells])

    @staticmethod
    def _fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.2f}"
        return str(cell)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        def line(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
        sep = "  ".join("-" * w for w in widths)
        return "\n".join([line(self.columns), sep,
                          *(line(r) for r in self.rows)])


def ascii_cdf(curves: dict[str, Cdf], width: int = 64, height: int = 12,
              log_x: bool = True, x_label: str = "",
              x_scale: float = 1.0) -> str:
    """Render one or more CDFs as an ASCII plot (the paper's figures are
    CDF plots; this keeps the terminal reports visually comparable).

    ``log_x`` matches the log-scale x-axes of Figures 9/10; each curve
    gets a distinct glyph; overlapping cells show the later curve.
    """
    if not curves:
        raise ValueError("need at least one curve")
    glyphs = "*o+x#@"
    lo = min(cdf.min for cdf in curves.values()) / x_scale
    hi = max(cdf.max for cdf in curves.values()) / x_scale
    if log_x:
        lo = max(lo, 1e-12)
        hi = max(hi, lo)
    if hi <= lo:
        # Degenerate range (single sample, or zero spread across every
        # curve): widen symmetrically around the value so the curve
        # renders mid-plot instead of collapsing onto the left axis
        # under a sliver of an x-range that reads as real spread.
        if log_x:
            lo, hi = lo / 2, hi * 2
        else:
            pad = max(abs(lo) / 2, 0.5)
            lo, hi = lo - pad, hi + pad
    if log_x:
        lo_t, hi_t = math.log10(lo), math.log10(hi)
        def to_col(value: float) -> int:
            t = (math.log10(max(value, 1e-12)) - lo_t) / (hi_t - lo_t)
            return min(width - 1, max(0, int(t * (width - 1))))
    else:
        def to_col(value: float) -> int:
            t = (value - lo) / (hi - lo)
            return min(width - 1, max(0, int(t * (width - 1))))

    grid = [[" "] * width for _ in range(height)]
    for index, (_label, cdf) in enumerate(sorted(curves.items())):
        glyph = glyphs[index % len(glyphs)]
        for row in range(height):
            fraction = (row + 0.5) / height  # bottom row ~ small fractions
            value = cdf.percentile(fraction * 100) / x_scale
            grid[height - 1 - row][to_col(value)] = glyph
    lines = ["1.0 |" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append("    |" + "".join(row))
    lines.append("0.0 |" + "".join(grid[-1]))
    lines.append("    +" + "-" * width)
    left = f"{lo:.3g}"
    right = f"{hi:.3g} {x_label}".rstrip()
    lines.append("     " + left + " " * max(1, width - len(left) - len(right))
                 + right)
    legend = "  ".join(f"{glyphs[i % len(glyphs)]} {label}"
                       for i, label in enumerate(sorted(curves)))
    lines.append("     " + legend)
    return "\n".join(lines)


def drain_campaign(network: Network, deployment: SpeedlightDeployment,
                   epochs: Sequence[int], settle_ns: int) -> None:
    """Run the simulation until the campaign's last snapshot plus a
    settling period (retries, shipping, observer assembly)."""
    if not epochs:
        return
    last = max(deployment.observer.snapshot(e).requested_wall_ns
               for e in epochs)
    network.run(until=last + settle_ns)


def header(title: str, subtitle: str = "") -> str:
    bar = "=" * max(len(title), len(subtitle), 40)
    lines = [bar, title]
    if subtitle:
        lines.append(subtitle)
    lines.append(bar)
    return "\n".join(lines)
