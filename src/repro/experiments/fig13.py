"""Figure 13: detecting synchronized application traffic.

The paper's §8.4 experiment: run GraphX (PageRank), measure the EWMA of
packet rate at the egress of every port across 100 snapshots, and
compute pairwise Spearman correlations between ports, keeping the
statistically significant ones (p < 0.1).  Ground truths to recover:

1. the master server moves no bulk data, so its access port must show
   **no** significant correlation with any other port;
2. the two uplinks of each leaf are ECMP next-hops of the same traffic,
   so they must be **positively** correlated;
3. snapshots find substantially more significant pairs than polling
   (the paper: 43% more), and polling misses or even inverts the ECMP
   next-hop correlations.

The two collection campaigns (snapshots, polling) are independent trial
specs; each returns its per-port time series, and the correlation
matrices are computed at assembly.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Optional

from repro.analysis.stats import (CorrelationResult, significant_fraction,
                                  spearman_matrix)
from repro.experiments.campaigns import (CampaignSpec, Round,
                                         all_egress_targets,
                                         polling_campaign, snapshot_campaign)
from repro.experiments.harness import TextTable, header
from repro.runtime import TrialResult, TrialRunner, TrialSpec, make_result, trial
from repro.sim.network import Network, NetworkConfig
from repro.topology import leaf_spine


@dataclass
class Fig13Config:
    seed: int = 42
    rounds: int = 100
    #: Cadence deliberately co-prime with the 10 ms GraphX iteration so
    #: successive rounds sample rotating superstep phases (the paper's
    #: 1 s interval achieves the same de-aliasing at testbed scale).
    interval_ns: int = 9_700_000
    alpha: float = 0.1
    master: str = "server0"

    @classmethod
    def quick(cls) -> "Fig13Config":
        return cls(rounds=50)


@dataclass
class Fig13Result:
    config: Fig13Config
    snapshots: CorrelationResult
    polling: CorrelationResult
    master_port: str
    uplink_pairs: list[tuple[str, str]]

    # ------------------------------------------------------------------
    # Derived metrics (the quantities §8.4 reports)
    # ------------------------------------------------------------------
    def significant_fraction(self, method: str) -> float:
        result = self.snapshots if method == "snapshots" else self.polling
        return significant_fraction(result, self.config.alpha)

    def extra_pairs_found(self) -> float:
        """How many more significant pairs snapshots find vs polling,
        as a ratio - 1 (the paper's "43% more")."""
        poll = len(self.polling.significant(self.config.alpha))
        snap = len(self.snapshots.significant(self.config.alpha))
        if poll == 0:
            return float("inf") if snap else 0.0
        return snap / poll - 1.0

    def master_significant(self, method: str) -> int:
        """Significant correlations involving the master's port (ground
        truth: zero)."""
        result = self.snapshots if method == "snapshots" else self.polling
        return sum(1 for (a, b) in result.significant(self.config.alpha)
                   if self.master_port in (a, b))

    def ecmp_pair_status(self, method: str) -> list[str]:
        """Per uplink pair: 'positive', 'negative', or 'insignificant'."""
        result = self.snapshots if method == "snapshots" else self.polling
        out = []
        for a, b in self.uplink_pairs:
            if result.p_of(a, b) >= self.config.alpha:
                out.append("insignificant")
            else:
                out.append("positive" if result.coefficient(a, b) > 0
                           else "negative")
        return out

    def report(self) -> str:
        table = TextTable(["Metric", "Snapshots", "Polling", "ground truth"])
        table.add("significant pair fraction",
                  f"{self.significant_fraction('snapshots'):.2f}",
                  f"{self.significant_fraction('polling'):.2f}",
                  "snapshots find more (+43% in paper)")
        table.add("master-port significant pairs",
                  self.master_significant("snapshots"),
                  self.master_significant("polling"),
                  "0 (master moves no bulk data)")
        table.add("ECMP uplink pairs",
                  ",".join(self.ecmp_pair_status("snapshots")),
                  ",".join(self.ecmp_pair_status("polling")),
                  "positive under snapshots")
        extra = self.extra_pairs_found()
        extra_str = "inf" if extra == float("inf") else f"{extra:+.0%}"
        return "\n".join([
            header("Figure 13 — pairwise port correlations under GraphX",
                   f"{self.config.rounds} rounds, Spearman, "
                   f"p < {self.config.alpha}"),
            table.render(),
            f"snapshots find {extra_str} significant pairs vs polling "
            "(paper: +43%)"])


# ----------------------------------------------------------------------
# Trial decomposition
# ----------------------------------------------------------------------

def _campaign_spec(config: Fig13Config) -> CampaignSpec:
    return CampaignSpec(workload="graphx", balancer="ecmp",
                        metric="ewma_packet_rate", rounds=config.rounds,
                        interval_ns=config.interval_ns, seed=config.seed,
                        poll_parallel_switches=False)


def specs(config: Fig13Config) -> list[TrialSpec]:
    """One spec per collection method."""
    return [TrialSpec(kind="fig13",
                      params=dict(method=method, rounds=config.rounds,
                                  interval_ns=config.interval_ns),
                      seed=config.seed, label=f"fig13/{method}")
            for method in ("snapshots", "polling")]


@trial("fig13")
def run_trial(spec: TrialSpec) -> TrialResult:
    p = spec.params
    config = Fig13Config(seed=spec.seed, rounds=p["rounds"],
                         interval_ns=p["interval_ns"])
    campaign = (snapshot_campaign if p["method"] == "snapshots"
                else polling_campaign)
    rounds = campaign(_campaign_spec(config), all_egress_targets)
    return make_result(spec, {"series": _series_from_rounds(rounds)})


def assemble(config: Fig13Config,
             results: Sequence[TrialResult]) -> Fig13Result:
    series = {r.params["method"]: r.data["series"] for r in results}
    master_port, uplink_pairs = _context(config)
    return Fig13Result(
        config=config,
        snapshots=spearman_matrix(series["snapshots"]),
        polling=spearman_matrix(series["polling"]),
        master_port=master_port,
        uplink_pairs=uplink_pairs)


def run(config: Optional[Fig13Config] = None,
        runner: Optional[TrialRunner] = None) -> Fig13Result:
    config = config or Fig13Config()
    runner = runner or TrialRunner()
    return assemble(config, runner.run_batch(specs(config)))


def _series_from_rounds(rounds: list[Round]) -> dict[str, list[float]]:
    series: dict[str, list[float]] = {}
    for round_ in rounds:
        for (sw, port, _d), value in round_.items():
            series.setdefault(f"{sw}:{port}", []).append(float(value))
    lengths = {len(v) for v in series.values()}
    if len(lengths) > 1:
        raise RuntimeError(f"ragged series: {lengths}")
    return series


def _context(config: Fig13Config) -> tuple[str, list[tuple[str, str]]]:
    """Master port name and uplink pair names, from the topology."""
    network = Network(leaf_spine(), NetworkConfig(seed=config.seed))
    master_leaf = None
    master_port = None
    for leaf in network.switches:
        port = network.port_map[leaf].get(config.master)
        if port is not None:
            master_leaf, master_port = leaf, port
            break
    assert master_leaf is not None
    pairs = []
    for leaf in sorted(network.switches):
        if not leaf.startswith("leaf"):
            continue
        uplinks = network.uplink_ports(leaf)
        for i in range(len(uplinks)):
            for j in range(i + 1, len(uplinks)):
                pairs.append((f"{leaf}:{uplinks[i]}", f"{leaf}:{uplinks[j]}"))
    return f"{master_leaf}:{master_port}", pairs


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().report())
