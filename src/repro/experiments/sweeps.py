"""Sensitivity sweeps over the model's calibrated constants.

EXPERIMENTS.md documents which constants each reproduced figure leans
on; these sweeps make the dependence executable, so a user recalibrating
for different hardware can see exactly how the headline results move:

* :func:`run_service_cost_sweep` — Figure 10's knee vs. the per-
  notification CPU cost.  The analytical model says
  ``max_rate ≈ 1 / (2 * ports * service_cost)``; the sweep checks the
  measured knee tracks it.
* :func:`run_ptp_sweep` — Figure 9's no-channel-state synchronization
  vs. the PTP residual sigma: snapshot sync degrades gracefully from
  PTP-class (µs) toward NTP-class (ms) clock quality, which is §2.1's
  motivation for tight clock sync.
* :func:`run_rate_sweep` — channel-state synchronization vs. traffic
  rate: the CS tail tracks per-channel packet interarrival (the
  documented deviation of our Figure 9 CS series from the paper's
  line-rate testbed).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List

from repro.analysis.stats import Cdf
from repro.core import ControlPlaneConfig, DeploymentConfig, ObserverConfig, SpeedlightDeployment
from repro.experiments.harness import TextTable, header
from repro.sim.clock import PTPConfig
from repro.sim.engine import MS, S, US
from repro.sim.network import Network, NetworkConfig
from repro.topology import leaf_spine, single_switch
from repro.workloads.synthetic import PoissonConfig, PoissonWorkload


# ----------------------------------------------------------------------
# Sweep 1: Figure 10 knee vs. notification service cost
# ----------------------------------------------------------------------

@dataclass
class ServiceCostSweepConfig:
    seed: int = 42
    ports: int = 16
    service_costs_ns: List[int] = field(
        default_factory=lambda: [55 * US, 110 * US, 220 * US, 440 * US])
    burst: int = 25
    search_iterations: int = 7

    @classmethod
    def quick(cls) -> "ServiceCostSweepConfig":
        return cls(service_costs_ns=[55 * US, 220 * US])


@dataclass
class ServiceCostSweepResult:
    config: ServiceCostSweepConfig
    max_rate_hz: Dict[int, float]

    def model_rate_hz(self, service_ns: int) -> float:
        """The analytical knee: one CPU, two notifications per port."""
        return 1e9 / (2 * self.config.ports * service_ns)

    def report(self) -> str:
        table = TextTable(["Service cost (us)", "Measured knee (Hz)",
                           "Model 1/(2*P*c) (Hz)"])
        for cost in sorted(self.max_rate_hz):
            table.add(cost / 1e3, f"{self.max_rate_hz[cost]:.0f}",
                      f"{self.model_rate_hz(cost):.0f}")
        return "\n".join([
            header("Sweep — snapshot-rate knee vs. notification CPU cost",
                   f"{self.config.ports}-port switch (Figure 10's bottleneck"
                   " model, made executable)"),
            table.render()])


def run_service_cost_sweep(
        config: ServiceCostSweepConfig = ServiceCostSweepConfig()
) -> ServiceCostSweepResult:
    from repro.experiments.fig10 import Fig10Config, _max_rate
    import repro.experiments.fig10 as fig10_module

    results: Dict[int, float] = {}
    original = fig10_module._sustained
    for cost in config.service_costs_ns:
        def sustained(ports: int, rate_hz: float, f10cfg,
                      _cost=cost) -> bool:
            network = Network(single_switch(num_hosts=ports),
                              NetworkConfig(seed=config.seed))
            deployment = SpeedlightDeployment(network, DeploymentConfig(
                metric="packet_count", channel_state=False, max_sid=None,
                control_plane=ControlPlaneConfig(
                    notification_service_ns=_cost,
                    reinitiation_timeout_ns=0, probe_delay_ns=0),
                observer=ObserverConfig(retry_timeout_ns=10 * S)))
            interval_ns = int(1e9 / rate_hz)
            deployment.schedule_campaign(f10cfg.burst, interval_ns)
            network.run(until=10 * MS + f10cfg.burst * interval_ns
                        + 200 * MS)
            stats = deployment.notification_stats()
            if stats["dropped"] > 0 or stats["backlog"] > 0:
                return False
            cp = next(iter(deployment.control_planes.values()))
            return cp.channel.max_backlog <= 2.5 * 2 * ports

        fig10_module._sustained = sustained
        try:
            results[cost] = _max_rate(
                config.ports, Fig10Config(
                    burst=config.burst,
                    search_iterations=config.search_iterations))
        finally:
            fig10_module._sustained = original
    return ServiceCostSweepResult(config=config, max_rate_hz=results)


# ----------------------------------------------------------------------
# Sweep 2: Figure 9 sync vs. PTP quality
# ----------------------------------------------------------------------

@dataclass
class PtpSweepConfig:
    seed: int = 42
    rounds: int = 30
    interval_ns: int = 2 * MS
    #: From datacenter PTP (1.5 us) up to LAN NTP (1 ms), §2.1's range.
    residual_sigmas_ns: List[int] = field(
        default_factory=lambda: [1_500, 15_000, 150_000, 1_000_000])

    @classmethod
    def quick(cls) -> "PtpSweepConfig":
        return cls(rounds=15, residual_sigmas_ns=[1_500, 150_000])


@dataclass
class PtpSweepResult:
    config: PtpSweepConfig
    sync_median_ns: Dict[int, float]

    def report(self) -> str:
        table = TextTable(["Clock residual sigma (us)",
                           "Snapshot sync median (us)"])
        for sigma in sorted(self.sync_median_ns):
            table.add(sigma / 1e3, self.sync_median_ns[sigma] / 1e3)
        return "\n".join([
            header("Sweep — snapshot synchronization vs. clock quality",
                   "PTP-class to NTP-class residuals (§2.1's contrast)"),
            table.render(),
            "snapshot sync is clock-bounded: NTP-class residuals forfeit "
            "the microsecond guarantee, as the paper argues."])


def run_ptp_sweep(config: PtpSweepConfig = PtpSweepConfig()) -> PtpSweepResult:
    results: Dict[int, float] = {}
    for sigma in config.residual_sigmas_ns:
        ptp = PTPConfig(residual_sigma_ns=sigma, residual_max_ns=6 * sigma)
        network = Network(leaf_spine(hosts_per_leaf=1),
                          NetworkConfig(seed=config.seed, ptp_config=ptp))
        deployment = SpeedlightDeployment(network, DeploymentConfig(
            metric="packet_count"))
        epochs = deployment.schedule_campaign(config.rounds,
                                              config.interval_ns)
        network.run(until=20 * MS + config.rounds * config.interval_ns
                    + 200 * MS)
        spreads = sorted(s for s in (deployment.sync_spread_ns(e)
                                     for e in epochs) if s is not None)
        results[sigma] = float(spreads[len(spreads) // 2])
    return PtpSweepResult(config=config, sync_median_ns=results)


# ----------------------------------------------------------------------
# Sweep 3: channel-state sync vs. traffic rate
# ----------------------------------------------------------------------

@dataclass
class RateSweepConfig:
    seed: int = 42
    rounds: int = 25
    interval_ns: int = 2 * MS
    rates_pps: List[float] = field(
        default_factory=lambda: [30_000.0, 100_000.0, 300_000.0])

    @classmethod
    def quick(cls) -> "RateSweepConfig":
        return cls(rounds=15, rates_pps=[30_000.0, 300_000.0])


@dataclass
class RateSweepResult:
    config: RateSweepConfig
    sync_median_ns: Dict[float, float]

    def report(self) -> str:
        table = TextTable(["Per-pair rate (kpps)",
                           "CS sync median (us)"])
        for rate in sorted(self.sync_median_ns):
            table.add(rate / 1e3, self.sync_median_ns[rate] / 1e3)
        return "\n".join([
            header("Sweep — channel-state sync vs. traffic rate",
                   "the CS tail tracks per-channel interarrival "
                   "(EXPERIMENTS.md's documented deviation)"),
            table.render()])


def run_rate_sweep(config: RateSweepConfig = RateSweepConfig()) -> RateSweepResult:
    results: Dict[float, float] = {}
    for rate in config.rates_pps:
        network = Network(leaf_spine(hosts_per_leaf=1),
                          NetworkConfig(seed=config.seed))
        duration = 20 * MS + config.rounds * config.interval_ns + 200 * MS
        workload = PoissonWorkload(network, PoissonConfig(
            seed=config.seed + 1, rate_pps=rate, stop_ns=duration,
            sport_churn=True))
        workload.start()
        deployment = SpeedlightDeployment(network, DeploymentConfig(
            metric="packet_count", channel_state=True, max_sid=4095,
            control_plane=ControlPlaneConfig(probe_delay_ns=0)))
        epochs = deployment.schedule_campaign(config.rounds,
                                              config.interval_ns)
        network.run(until=duration)
        spreads = sorted(s for s in (deployment.sync_spread_ns(e)
                                     for e in epochs) if s is not None)
        results[rate] = float(spreads[len(spreads) // 2])
    return RateSweepResult(config=config, sync_median_ns=results)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run_service_cost_sweep(ServiceCostSweepConfig.quick()).report())
    print()
    print(run_ptp_sweep(PtpSweepConfig.quick()).report())
    print()
    print(run_rate_sweep(RateSweepConfig.quick()).report())
