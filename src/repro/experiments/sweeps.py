"""Sensitivity sweeps over the model's calibrated constants.

EXPERIMENTS.md documents which constants each reproduced figure leans
on; these sweeps make the dependence executable, so a user recalibrating
for different hardware can see exactly how the headline results move:

* :func:`run_service_cost_sweep` — Figure 10's knee vs. the per-
  notification CPU cost.  The analytical model says
  ``max_rate ≈ 1 / (2 * ports * service_cost)``; the sweep checks the
  measured knee tracks it.
* :func:`run_ptp_sweep` — Figure 9's no-channel-state synchronization
  vs. the PTP residual sigma: snapshot sync degrades gracefully from
  PTP-class (µs) toward NTP-class (ms) clock quality, which is §2.1's
  motivation for tight clock sync.
* :func:`run_rate_sweep` — channel-state synchronization vs. traffic
  rate: the CS tail tracks per-channel packet interarrival (the
  documented deviation of our Figure 9 CS series from the paper's
  line-rate testbed).

Each sweep point is an independent trial spec, so the sweeps batch and
cache like every figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Optional

from repro.core import ControlPlaneConfig, deploy
from repro.experiments.campaigns import poisson_network, start_poisson
from repro.experiments.harness import TextTable, header
from repro.runtime import TrialResult, TrialRunner, TrialSpec, make_result, trial
from repro.sim.clock import PTPConfig
from repro.sim.engine import MS, US


# ----------------------------------------------------------------------
# Sweep 1: Figure 10 knee vs. notification service cost
# ----------------------------------------------------------------------

@dataclass
class ServiceCostSweepConfig:
    seed: int = 42
    ports: int = 16
    service_costs_ns: list[int] = field(
        default_factory=lambda: [55 * US, 110 * US, 220 * US, 440 * US])
    burst: int = 25
    search_iterations: int = 7

    @classmethod
    def quick(cls) -> "ServiceCostSweepConfig":
        return cls(service_costs_ns=[55 * US, 220 * US])


@dataclass
class ServiceCostSweepResult:
    config: ServiceCostSweepConfig
    max_rate_hz: dict[int, float]

    def model_rate_hz(self, service_ns: int) -> float:
        """The analytical knee: one CPU, two notifications per port."""
        return 1e9 / (2 * self.config.ports * service_ns)

    def report(self) -> str:
        table = TextTable(["Service cost (us)", "Measured knee (Hz)",
                           "Model 1/(2*P*c) (Hz)"])
        for cost in sorted(self.max_rate_hz):
            table.add(cost / 1e3, f"{self.max_rate_hz[cost]:.0f}",
                      f"{self.model_rate_hz(cost):.0f}")
        return "\n".join([
            header("Sweep — snapshot-rate knee vs. notification CPU cost",
                   f"{self.config.ports}-port switch (Figure 10's bottleneck"
                   " model, made executable)"),
            table.render()])


def service_cost_specs(config: ServiceCostSweepConfig) -> list[TrialSpec]:
    """One spec per service cost (one full knee search each)."""
    return [TrialSpec(kind="sweep_service_cost",
                      params=dict(cost_ns=cost, ports=config.ports,
                                  burst=config.burst,
                                  search_iterations=config.search_iterations),
                      seed=config.seed,
                      label=f"sweep-service-cost/{cost // 1000}us")
            for cost in config.service_costs_ns]


@trial("sweep_service_cost")
def run_service_cost_trial(spec: TrialSpec) -> TrialResult:
    from repro.experiments.fig10 import Fig10Config, _max_rate

    p = spec.params
    rate = _max_rate(
        p["ports"],
        Fig10Config(seed=spec.seed, burst=p["burst"],
                    search_iterations=p["search_iterations"]),
        control_plane=ControlPlaneConfig(
            notification_service_ns=p["cost_ns"],
            reinitiation_timeout_ns=0,  # retries would double the load
            probe_delay_ns=0))
    return make_result(spec, {"max_rate_hz": rate})


def service_cost_assemble(
        config: ServiceCostSweepConfig,
        results: Sequence[TrialResult]) -> ServiceCostSweepResult:
    return ServiceCostSweepResult(
        config=config,
        max_rate_hz={r.params["cost_ns"]: r.data["max_rate_hz"]
                     for r in results})


def run_service_cost_sweep(
        config: Optional[ServiceCostSweepConfig] = None,
        runner: Optional[TrialRunner] = None) -> ServiceCostSweepResult:
    config = config or ServiceCostSweepConfig()
    runner = runner or TrialRunner()
    return service_cost_assemble(config,
                                 runner.run_batch(service_cost_specs(config)))


# ----------------------------------------------------------------------
# Sweep 2: Figure 9 sync vs. PTP quality
# ----------------------------------------------------------------------

@dataclass
class PtpSweepConfig:
    seed: int = 42
    rounds: int = 30
    interval_ns: int = 2 * MS
    #: From datacenter PTP (1.5 us) up to LAN NTP (1 ms), §2.1's range.
    residual_sigmas_ns: list[int] = field(
        default_factory=lambda: [1_500, 15_000, 150_000, 1_000_000])

    @classmethod
    def quick(cls) -> "PtpSweepConfig":
        return cls(rounds=15, residual_sigmas_ns=[1_500, 150_000])


@dataclass
class PtpSweepResult:
    config: PtpSweepConfig
    sync_median_ns: dict[int, float]

    def report(self) -> str:
        table = TextTable(["Clock residual sigma (us)",
                           "Snapshot sync median (us)"])
        for sigma in sorted(self.sync_median_ns):
            table.add(sigma / 1e3, self.sync_median_ns[sigma] / 1e3)
        return "\n".join([
            header("Sweep — snapshot synchronization vs. clock quality",
                   "PTP-class to NTP-class residuals (§2.1's contrast)"),
            table.render(),
            "snapshot sync is clock-bounded: NTP-class residuals forfeit "
            "the microsecond guarantee, as the paper argues."])


def ptp_specs(config: PtpSweepConfig) -> list[TrialSpec]:
    """One spec per clock-residual sigma."""
    return [TrialSpec(kind="sweep_ptp",
                      params=dict(sigma_ns=sigma, rounds=config.rounds,
                                  interval_ns=config.interval_ns),
                      seed=config.seed, label=f"sweep-ptp/{sigma}ns")
            for sigma in config.residual_sigmas_ns]


@trial("sweep_ptp")
def run_ptp_trial(spec: TrialSpec) -> TrialResult:
    p = spec.params
    sigma = p["sigma_ns"]
    ptp = PTPConfig(residual_sigma_ns=sigma, residual_max_ns=6 * sigma)
    network = poisson_network(seed=spec.seed, ptp=ptp)
    deployment = deploy(network, metric="packet_count")
    epochs = deployment.schedule_campaign(p["rounds"], p["interval_ns"])
    network.run(until=20 * MS + p["rounds"] * p["interval_ns"] + 200 * MS)
    spreads = sorted(s for s in (deployment.sync_spread_ns(e)
                                 for e in epochs) if s is not None)
    return make_result(
        spec, {"sync_median_ns": float(spreads[len(spreads) // 2])})


def ptp_assemble(config: PtpSweepConfig,
                 results: Sequence[TrialResult]) -> PtpSweepResult:
    return PtpSweepResult(
        config=config,
        sync_median_ns={r.params["sigma_ns"]: r.data["sync_median_ns"]
                        for r in results})


def run_ptp_sweep(config: Optional[PtpSweepConfig] = None,
                  runner: Optional[TrialRunner] = None) -> PtpSweepResult:
    config = config or PtpSweepConfig()
    runner = runner or TrialRunner()
    return ptp_assemble(config, runner.run_batch(ptp_specs(config)))


# ----------------------------------------------------------------------
# Sweep 3: channel-state sync vs. traffic rate
# ----------------------------------------------------------------------

@dataclass
class RateSweepConfig:
    seed: int = 42
    rounds: int = 25
    interval_ns: int = 2 * MS
    rates_pps: list[float] = field(
        default_factory=lambda: [30_000.0, 100_000.0, 300_000.0])

    @classmethod
    def quick(cls) -> "RateSweepConfig":
        return cls(rounds=15, rates_pps=[30_000.0, 300_000.0])


@dataclass
class RateSweepResult:
    config: RateSweepConfig
    sync_median_ns: dict[float, float]

    def report(self) -> str:
        table = TextTable(["Per-pair rate (kpps)",
                           "CS sync median (us)"])
        for rate in sorted(self.sync_median_ns):
            table.add(rate / 1e3, self.sync_median_ns[rate] / 1e3)
        return "\n".join([
            header("Sweep — channel-state sync vs. traffic rate",
                   "the CS tail tracks per-channel interarrival "
                   "(EXPERIMENTS.md's documented deviation)"),
            table.render()])


def rate_specs(config: RateSweepConfig) -> list[TrialSpec]:
    """One spec per traffic rate."""
    return [TrialSpec(kind="sweep_rate",
                      params=dict(rate_pps=rate, rounds=config.rounds,
                                  interval_ns=config.interval_ns),
                      seed=config.seed,
                      label=f"sweep-rate/{rate / 1e3:.0f}kpps")
            for rate in config.rates_pps]


@trial("sweep_rate")
def run_rate_trial(spec: TrialSpec) -> TrialResult:
    p = spec.params
    network = poisson_network(seed=spec.seed)
    duration = 20 * MS + p["rounds"] * p["interval_ns"] + 200 * MS
    start_poisson(network, seed=spec.seed + 1, rate_pps=p["rate_pps"],
                  stop_ns=duration)
    deployment = deploy(
        network, metric="packet_count", channel_state=True, max_sid=4095,
        control_plane=ControlPlaneConfig(probe_delay_ns=0))
    epochs = deployment.schedule_campaign(p["rounds"], p["interval_ns"])
    network.run(until=duration)
    spreads = sorted(s for s in (deployment.sync_spread_ns(e)
                                 for e in epochs) if s is not None)
    return make_result(
        spec, {"sync_median_ns": float(spreads[len(spreads) // 2])})


def rate_assemble(config: RateSweepConfig,
                  results: Sequence[TrialResult]) -> RateSweepResult:
    return RateSweepResult(
        config=config,
        sync_median_ns={r.params["rate_pps"]: r.data["sync_median_ns"]
                        for r in results})


def run_rate_sweep(config: Optional[RateSweepConfig] = None,
                   runner: Optional[TrialRunner] = None) -> RateSweepResult:
    config = config or RateSweepConfig()
    runner = runner or TrialRunner()
    return rate_assemble(config, runner.run_batch(rate_specs(config)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run_service_cost_sweep(ServiceCostSweepConfig.quick()).report())
    print()
    print(run_ptp_sweep(PtpSweepConfig.quick()).report())
    print()
    print(run_rate_sweep(RateSweepConfig.quick()).report())
