"""Figure 11: average synchronization vs. number of routers.

The paper's own methodology is a simulation: "Our simulation included
PTP time drift, OpenNetworkLinux scheduling effects, and the latency
between initiation and data plane snapshot execution.  Distributions for
all of these values were collected from our hardware testbed." (§8.2)

We do the same Monte-Carlo with the distributions our simulated testbed
uses (so Figure 9 and Figure 11 are controlled by one set of constants):

* PTP residual clock offset — :class:`repro.sim.clock.PTPConfig`;
* OS scheduler wake-up latency — the control plane's lognormal+tail
  model (:class:`repro.core.control_plane.ControlPlaneConfig`);
* initiation→execution latency — per-port serial injection cost plus
  the constant ASIC crossing (constants cancel in a max-min spread, but
  the per-port sweep does not).

Per trial, each of N routers draws one clock error and one wake-up
latency; its 64 ports' ingress units execute the snapshot at
``clock + wakeup + k * per_port + jitter``.  Whole-network
synchronization is the spread between the earliest and latest unit
execution; the figure reports the average over trials.  The curve grows
with N (extreme-value effect over bounded distributions) and saturates
under 100 µs — "this effect is asymptotic and still stays under typical
RTTs".

Each network size is an independent trial spec with a seed derived
deterministically from ``(seed, N)``, so the Monte-Carlo parallelises
without reordering any random stream.
"""

from __future__ import annotations

import math
import random
from dataclasses import asdict, dataclass, field
from collections.abc import Sequence
from typing import Optional

from repro.core.control_plane import ControlPlaneConfig
from repro.experiments.harness import TextTable, header
from repro.runtime import (TrialResult, TrialRunner, TrialSpec, derive_seed,
                           make_result, trial)
from repro.sim.clock import PTPConfig


@dataclass
class Fig11Config:
    seed: int = 42
    router_counts: list[int] = field(
        default_factory=lambda: [10, 30, 100, 300, 1000, 3000, 10000])
    ports_per_router: int = 64
    trials: int = 40
    ptp: PTPConfig = field(default_factory=PTPConfig)
    cp: ControlPlaneConfig = field(default_factory=ControlPlaneConfig)

    @classmethod
    def quick(cls) -> "Fig11Config":
        return cls(router_counts=[10, 100, 1000, 10000], trials=12)


@dataclass
class Fig11Result:
    config: Fig11Config
    avg_sync_ns: dict[int, float]

    def report(self) -> str:
        table = TextTable(["Routers", "Avg synchronization (us)"])
        for n in sorted(self.avg_sync_ns):
            table.add(n, self.avg_sync_ns[n] / 1e3)
        lines = [
            header("Figure 11 — average synchronization vs. network size",
                   f"{self.config.ports_per_router}-port routers, "
                   "no channel state, Monte-Carlo over testbed distributions"),
            table.render(),
            "paper: grows slowly with network size, stays < 100 us "
            "even at 10,000 routers"]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Trial decomposition
# ----------------------------------------------------------------------

def specs(config: Fig11Config) -> list[TrialSpec]:
    """One spec per network size."""
    return [TrialSpec(kind="fig11",
                      params=dict(routers=n, trials=config.trials,
                                  ports_per_router=config.ports_per_router,
                                  ptp=asdict(config.ptp),
                                  cp=asdict(config.cp)),
                      seed=config.seed, label=f"fig11/{n}r")
            for n in config.router_counts]


@trial("fig11")
def run_trial(spec: TrialSpec) -> TrialResult:
    p = spec.params
    config = Fig11Config(seed=spec.seed, router_counts=[p["routers"]],
                         ports_per_router=p["ports_per_router"],
                         trials=p["trials"], ptp=PTPConfig(**p["ptp"]),
                         cp=ControlPlaneConfig(**p["cp"]))
    rng = random.Random(derive_seed(spec.seed, "fig11", p["routers"]))
    total = sum(_trial_sync_ns(rng, config, p["routers"])
                for _ in range(config.trials))
    return make_result(spec, {"avg_sync_ns": total / config.trials})


def assemble(config: Fig11Config,
             results: Sequence[TrialResult]) -> Fig11Result:
    return Fig11Result(config=config,
                       avg_sync_ns={r.params["routers"]: r.data["avg_sync_ns"]
                                    for r in results})


def run(config: Optional[Fig11Config] = None,
        runner: Optional[TrialRunner] = None) -> Fig11Result:
    config = config or Fig11Config()
    runner = runner or TrialRunner()
    return assemble(config, runner.run_batch(specs(config)))


# ----------------------------------------------------------------------
# Monte-Carlo sampling
# ----------------------------------------------------------------------

def _sample_clock_error(rng: random.Random, ptp: PTPConfig) -> int:
    """One signed PTP residual (same model as PTPService.sample_residual)."""
    if rng.random() < ptp.tail_probability:
        magnitude = rng.uniform(ptp.residual_sigma_ns, ptp.residual_max_ns)
    else:
        magnitude = min(abs(rng.gauss(0.0, ptp.residual_sigma_ns)),
                        ptp.residual_max_ns)
    return int(magnitude) if rng.random() < 0.5 else -int(magnitude)


def _sample_wakeup(rng: random.Random, cp: ControlPlaneConfig) -> int:
    if rng.random() < cp.wakeup_tail_probability:
        value = rng.uniform(cp.wakeup_tail_max_ns / 3, cp.wakeup_tail_max_ns)
    else:
        value = rng.lognormvariate(math.log(cp.wakeup_median_ns),
                                   cp.wakeup_sigma)
    return min(int(value), cp.wakeup_max_ns)


def _trial_sync_ns(rng: random.Random, config: Fig11Config,
                   num_routers: int) -> int:
    earliest = None
    latest = None
    sweep = config.ports_per_router * config.cp.initiation_cpu_ns
    for _ in range(num_routers):
        base = (_sample_clock_error(rng, config.ptp) +
                _sample_wakeup(rng, config.cp))
        first = base + config.cp.initiation_cpu_ns + \
            rng.randint(-config.cp.initiation_jitter_ns,
                        config.cp.initiation_jitter_ns)
        last = base + sweep + \
            rng.randint(-config.cp.initiation_jitter_ns,
                        config.cp.initiation_jitter_ns)
        lo, hi = min(first, last), max(first, last)
        earliest = lo if earliest is None else min(earliest, lo)
        latest = hi if latest is None else max(latest, hi)
    return latest - earliest


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().report())
