"""Coordinated updates verified by snapshots: strategy x clock error.

The paper motivates snapshots with "is my network update consistent?"
(§8) but never closes the loop.  This experiment does: each trial runs
a canonical rollout — rebalance, detour, revert, drain, restore — on a
4-leaf/2-spine fabric under one update *strategy* and one injected
clock-error level, then renders per-wave verdicts from synchronized
snapshots that straddle each wave's generation-bumping instant
(:mod:`repro.updates.verify`).

The expected ordering (the reproduction target):

* :class:`~repro.updates.TimedSwap` — every device swaps at the same
  instant *on its own clock*.  Atomicity degrades monotonically as the
  injected PTP error grows, transient loops appear (TTL-expiry drops in
  the detour wave's mixed window) and the drain wave's withdrawal races
  its redirects into attributed black holes.
* :class:`~repro.updates.PhasedUpdate` — safe orderings with
  inter-phase gaps stay loop-free while the gap exceeds the skew, at
  the cost of a long mixed window (partial atomicity by design).
* :class:`~repro.updates.TwoPhaseVersioned` — per-packet version tags
  keep **every** error level loop-free and black-hole-free; only the
  commit instant (still clock-timed) shows in the atomicity score.

Each verdict pass runs with ``metric="fib_version"`` (gauge snapshots
of the forwarding generation).  A second *audit* pass re-runs the same
cell with ``metric="packet_count"`` + channel state and checks the
straddling cuts against :class:`~repro.analysis.invariants.LinkAudit`
and the ground-truth conservation law — updates may drop packets in
mixed windows; they must never corrupt a snapshot.

The plan and its compiled schedule ride in each TrialSpec's params
(JSON forms, same contract as the fault experiments — docs/SPECS.md),
so scenarios participate in the cache fingerprint.  ``--fault-profile``
composes chaos on top; ``--update-plan`` swaps in a serialized plan;
``--shards N`` space-partitions each cell (verdicts must not change).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from collections.abc import Sequence
from typing import Any, Optional

from repro.analysis.consistency import ConsistencyChecker
from repro.analysis.invariants import LinkAudit
from repro.core import deploy
from repro.experiments.harness import TextTable, header
from repro.faults import FaultInjector, FaultProfile, FaultSchedule, \
    ProfileContext
from repro.runtime import TrialResult, TrialRunner, TrialSpec, make_result, \
    trial
from repro.sim.engine import MS, US
from repro.sim.network import Network, NetworkConfig
from repro.sim.shard import ShardWorker, run_sharded
from repro.topology import leaf_spine
from repro.updates import (DropRecord, PhasedUpdate, TimedSwap,
                           TwoPhaseVersioned, UpdateContext, UpdatePlan,
                           UpdateSchedule, UpdateVerifier,
                           inject_clock_error, noiseless_ptp)

__all__ = [
    "STRATEGIES",
    "UpdatesConfig",
    "UpdatesResult",
    "assemble",
    "canonical_plan",
    "run",
    "run_updates_trial",
    "scenarios",
    "specs",
]

#: Simulated horizon of one cell; the last wave fires at 75 ms and the
#: tail covers two-phase cleanups plus snapshot assembly.
HORIZON_NS = 100 * MS
RUN_UNTIL_NS = HORIZON_NS + 20 * MS

#: The built-in strategies, in presentation order.
STRATEGIES = ["timed", "phased", "twophase"]

#: The canonical rollout's route intents, shared by every strategy:
#: (instant, label, safe phase order, route changes).  Intents assume
#: the 4-leaf/2-spine testbed; ``canonical_plan`` turns them into a
#: concrete composed plan.
_LEAVES = [f"leaf{i}" for i in range(4)]
_REMOTE = {leaf: tuple(f"server{j}" for j in range(4)
                       if f"leaf{j}" != leaf)
           for leaf in _LEAVES}
_INTENTS: list[tuple[int, str, tuple[str, ...], tuple]] = [
    # Pin every leaf's remote traffic onto spine0 (pure atomicity wave:
    # no loop or black-hole risk whichever order devices swap in).
    (15 * MS, "rebalance", (),
     tuple((leaf, dst, ("spine0",))
           for leaf in _LEAVES for dst in _REMOTE[leaf])),
    # Detour server1 via the spine1 valley.  Under skew the pair is a
    # textbook loop: spine0 (fast clock) starts valleying through leaf0
    # while leaf0 (slow clock) still points back at spine0.
    (30 * MS, "detour", ("leaf0", "spine0"),
     (("leaf0", "server1", ("spine1",)),
      ("spine0", "server1", ("leaf0",)))),
    # Revert the detour (the reverse ordering happens to be safe here:
    # the slow clock swaps last, which is the consistent order).
    (45 * MS, "revert", ("spine0", "leaf0"),
     (("leaf0", "server1", ("spine0",)),
      ("spine0", "server1", ("leaf1",)))),
    # Drain spine0 for server3: the withdrawal races the redirects —
    # a fast-clocked withdrawal black-holes traffic the slow leaves
    # still send its way (attributed, because the wave withdrew).
    (60 * MS, "drain", ("leaf0", "leaf1", "leaf2", "spine0"),
     (("leaf0", "server3", ("spine1",)),
      ("leaf1", "server3", ("spine1",)),
      ("leaf2", "server3", ("spine1",)),
      ("spine0", "server3", ()))),
    # Restore the initial ECMP everywhere.
    (75 * MS, "restore", (),
     tuple([(leaf, dst, ("spine0", "spine1"))
            for leaf in _LEAVES for dst in _REMOTE[leaf]]
           + [("spine0", "server3", ("leaf3",))])),
]


def canonical_plan(strategy: str) -> UpdatePlan:
    """The canonical five-wave rollout under one update strategy."""
    parts: list[UpdatePlan] = []
    for at_ns, label, order, routes in _INTENTS:
        if strategy == "timed":
            parts.append(TimedSwap(at_ns=at_ns, routes=routes, label=label))
        elif strategy == "phased":
            parts.append(PhasedUpdate(at_ns=at_ns, gap_ns=2 * MS,
                                      routes=routes, order=order,
                                      label=label))
        elif strategy == "twophase":
            parts.append(TwoPhaseVersioned(at_ns=at_ns, routes=routes,
                                           label=label))
        else:
            raise ValueError(f"unknown update strategy {strategy!r} "
                             f"(expected one of {STRATEGIES})")
    plan = parts[0]
    for part in parts[1:]:
        plan = plan | part
    return plan


@dataclass
class UpdatesConfig:
    seed: int = 69
    #: Injected PTP error levels: per-switch clock offsets are drawn
    #: once per level from a content-keyed Gaussian with this sigma
    #: (``repro.updates.inject_clock_error``), so the realized skew
    #: pattern is fixed across shard counts and scales with the level.
    clock_error_ns: list[int] = field(
        default_factory=lambda: [0, 2_000, 5_000, 15_000, 40_000, 100_000])
    strategies: list[str] = field(default_factory=lambda: list(STRATEGIES))
    #: Inter-packet gap of each all-to-all background flow.
    gap_ns: int = 12 * US
    #: Sender TTL: low enough that a transient loop expires inside the
    #: mixed window, high enough for the longest legitimate path.
    ttl: int = 6
    #: Serialized :class:`~repro.updates.UpdatePlan`
    #: (``plan.to_jsonable()``).  When set, the experiment sweeps this
    #: single plan over the clock-error levels instead of the built-in
    #: strategy set (the ``--update-plan`` CLI path).
    plan: Optional[dict] = None
    #: Serialized :class:`~repro.faults.FaultProfile`; composes a chaos
    #: layer on top of every cell (the ``--fault-profile`` CLI path).
    profile: Optional[dict] = None
    #: Re-run each cell with ``metric="packet_count"`` + channel state
    #: and audit the straddling cuts (single-process cells only).
    audit: bool = True
    #: Space-parallel shards per trial (``--shards``); verdicts must
    #: not depend on the shard count.
    shards: int = 1

    @classmethod
    def quick(cls) -> "UpdatesConfig":
        return cls(clock_error_ns=[0, 15_000, 100_000],
                   strategies=["timed", "twophase"], audit=False)

    @classmethod
    def chaos(cls) -> "UpdatesConfig":
        """Updates under faults: the quick grid with a mild independent
        chaos layer on top (``make chaos-smoke``)."""
        from repro.faults import IndependentFaults
        profile = IndependentFaults(
            intensity=0.25, kinds=("link_delay", "cp_slow"))
        config = cls.quick()
        config.profile = profile.to_jsonable()
        return config


def scenarios(config: UpdatesConfig) -> list[tuple[str, UpdatePlan]]:
    """The (strategy label, plan) pairs this config sweeps."""
    if config.plan is not None:
        plan = UpdatePlan.from_jsonable(config.plan)
        return [(f"plan-{plan.plan_type}", plan)]
    return [(strategy, canonical_plan(strategy))
            for strategy in config.strategies]


def _topology():
    return leaf_spine(num_leaves=4, num_spines=2, hosts_per_leaf=1)


def _fault_schedule(config: UpdatesConfig) -> Optional[dict]:
    if config.profile is None:
        return None
    profile = FaultProfile.from_jsonable(config.profile)
    context = ProfileContext.for_topology(
        _topology(), horizon_ns=HORIZON_NS, start_ns=10 * MS,
        seed=config.seed)
    return profile.compile(context).to_jsonable()


def specs(config: UpdatesConfig) -> list[TrialSpec]:
    """One spec per (strategy, clock-error) cell; the plan and its
    compiled schedule ride in the params, so the scenario is part of
    the cache fingerprint."""
    context = UpdateContext.for_topology(_topology(),
                                         horizon_ns=HORIZON_NS,
                                         seed=config.seed)
    faults = _fault_schedule(config)
    out = []
    for label, plan in scenarios(config):
        schedule = plan.compile(context).to_jsonable()
        for sigma in config.clock_error_ns:
            params: dict[str, Any] = dict(
                scenario=label, sigma_ns=sigma,
                plan=plan.to_jsonable(), schedule=schedule,
                gap_ns=config.gap_ns, ttl=config.ttl,
                audit=config.audit)
            if faults is not None:
                params["faults"] = faults
            if config.shards > 1:
                # Added only when sharded, so single-process
                # fingerprints (and their cached results) are
                # unchanged; verdicts must agree regardless.
                params["shards"] = config.shards
            out.append(TrialSpec(kind="updates_sweep", params=params,
                                 seed=config.seed,
                                 label=f"updates/{label}@{sigma}"))
    return out


def _start_traffic(network: Network, hosts: Sequence[str], gap_ns: int,
                   ttl: int) -> None:
    """Deterministic all-to-all background traffic.

    Flow definitions are derived from the *global* host list so a shard
    worker (which owns a subset of the hosts) emits exactly the packets
    the single-process run emits from those hosts.
    """
    num = int(HORIZON_NS // gap_ns)
    for i, src in enumerate(hosts):
        host = network.hosts.get(src)
        if host is None:
            continue
        host.default_ttl = ttl
        for j, dst in enumerate(hosts):
            if src == dst:
                continue
            host.send_flow(dst, num, sport=9000 + j, dport=7000,
                           gap_ns=gap_ns, start_delay_ns=17 * i)


def _arm_faults(network: Network, deployment, params: dict):
    if "faults" not in params:
        return None
    injector = FaultInjector(network,
                             FaultSchedule.from_jsonable(params["faults"]),
                             deployment=deployment)
    injector.arm()
    return injector


def _wave_cuts(observer, wave_epochs: dict[int, int]) -> dict[int, dict]:
    """Per wave: the straddling cut reduced to plain data (epoch,
    usability, per-device minimum ingress generation)."""
    cuts = {}
    for wave_index, epoch in wave_epochs.items():
        snap = observer.snapshot(epoch)
        usable = snap is not None and snap.usable
        cuts[wave_index] = {
            "epoch": epoch,
            "usable": usable,
            "gens": (UpdateVerifier.device_generations(snap)
                     if usable else None),
        }
    return cuts


def _render(verifier: UpdateVerifier, cuts: dict[int, dict],
            drops: Sequence[DropRecord]) -> list:
    return [verifier.verdict_data(
                wave,
                cuts.get(wave.index, {}).get("gens"),
                cuts.get(wave.index, {}).get("epoch"),
                drops)
            for wave in verifier.schedule.waves]


def _single_cell(spec: TrialSpec, schedule: UpdateSchedule,
                 verifier: UpdateVerifier) -> dict[str, Any]:
    p = spec.params
    topo = _topology()
    hosts = sorted(topo.hosts)
    network = Network(topo, NetworkConfig(seed=spec.seed,
                                          ptp_config=noiseless_ptp()))
    offsets = inject_clock_error(network, p["sigma_ns"], seed=spec.seed)
    deployment = deploy(network, metric="fib_version", updates=schedule)
    injector = _arm_faults(network, deployment, p)
    wave_epochs = {w: deployment.observer.take_snapshot(at_wall_ns=at)
                   for w, at in sorted(verifier.snapshot_instants().items())}
    _start_traffic(network, hosts, p["gap_ns"], p["ttl"])
    network.run(until=RUN_UNTIL_NS)

    cuts = _wave_cuts(deployment.observer, wave_epochs)
    drops = list(deployment.update_driver.drops)
    data = _fold(verifier, cuts, drops)
    data["offsets"] = offsets
    data["updates_applied"] = len(deployment.update_driver.applied)
    data["faults_applied"] = injector.applied if injector else 0
    if p.get("audit", True):
        data.update(_audit_cell(spec, schedule, verifier))
    return data


def _audit_cell(spec: TrialSpec, schedule: UpdateSchedule,
                verifier: UpdateVerifier) -> dict[str, Any]:
    """The conservation pass: same cell, ``packet_count`` + channel
    state, straddling cuts audited against the link non-negativity
    invariant and the trace-replayed conservation law."""
    p = spec.params
    topo = _topology()
    network = Network(topo, NetworkConfig(seed=spec.seed,
                                          ptp_config=noiseless_ptp(),
                                          enable_tracing=True))
    inject_clock_error(network, p["sigma_ns"], seed=spec.seed)
    deployment = deploy(network, metric="packet_count", channel_state=True,
                        updates=schedule)
    _arm_faults(network, deployment, p)
    epochs = [deployment.observer.take_snapshot(at_wall_ns=at)
              for _w, at in sorted(verifier.snapshot_instants().items())]
    _start_traffic(network, sorted(topo.hosts), p["gap_ns"], p["ttl"])
    network.run(until=RUN_UNTIL_NS)

    snapshots = [deployment.observer.snapshot(e) for e in epochs]
    link_audit = LinkAudit(network).audit_completed(snapshots)
    checker = ConsistencyChecker(deployment.ids, metric="packet_count")
    checker.ingest(network.trace_log)
    consistency = checker.audit(snapshots, channel_state=True)
    return {
        "audit_ok": link_audit.ok,
        "audit_summary": str(link_audit),
        "consistency_ok": consistency.ok,
        "consistency_summary": str(consistency),
        "consistency_violations": list(consistency.violations),
    }


def _sharded_setup(worker: ShardWorker, schedule_json: dict, sigma_ns: int,
                   seed: int, gap_ns: int, ttl: int, hosts: list):
    """Per-shard setup (module-level so the process runner can pickle
    it).  Each worker arms the slice of the schedule it owns; the
    observer shard pre-schedules the straddling snapshots; every shard
    ships its drop log home as plain tuples."""
    schedule = UpdateSchedule.from_jsonable(schedule_json)
    inject_clock_error(worker.network, sigma_ns, seed=seed)
    local = schedule.restrict(set(worker.network.switches))
    deployment = deploy(worker, metric="fib_version", updates=local)
    wave_epochs: dict[int, int] = {}
    if deployment.is_observer_shard:
        verifier = UpdateVerifier(schedule)
        for w, at in sorted(verifier.snapshot_instants().items()):
            wave_epochs[w] = deployment.observer.take_snapshot(at_wall_ns=at)
    _start_traffic(worker.network, hosts, gap_ns, ttl)

    def finish() -> dict:
        result: dict[str, Any] = {
            "drops": [(d.time_ns, d.device, d.kind, d.dst)
                      for d in deployment.update_driver.drops],
            "applied": len(deployment.update_driver.applied),
        }
        if deployment.is_observer_shard:
            result["cuts"] = _wave_cuts(deployment.observer, wave_epochs)
        return result

    return finish


def _sharded_cell(spec: TrialSpec, schedule: UpdateSchedule,
                  verifier: UpdateVerifier) -> dict[str, Any]:
    from repro.core.sharded import OBSERVER_SHARD

    p = spec.params
    topo = _topology()
    results = run_sharded(
        topo, NetworkConfig(seed=spec.seed, ptp_config=noiseless_ptp()),
        shards=p["shards"], until=RUN_UNTIL_NS, setup=_sharded_setup,
        setup_args=(p["schedule"], p["sigma_ns"], spec.seed,
                    p["gap_ns"], p["ttl"], sorted(topo.hosts)))
    drops = [DropRecord(*row) for shard in results
             for row in shard["drops"]]
    drops.sort(key=lambda d: (d.time_ns, d.device, d.kind, d.dst))
    cuts = results[OBSERVER_SHARD]["cuts"]
    data = _fold(verifier, cuts, drops)
    data["updates_applied"] = sum(shard["applied"] for shard in results)
    data["faults_applied"] = 0
    return data


def _fold(verifier: UpdateVerifier, cuts: dict[int, dict],
          drops: Sequence[DropRecord]) -> dict[str, Any]:
    verdicts = _render(verifier, cuts, drops)
    atoms = [v.atomicity for v in verdicts if v.atomicity is not None]
    return {
        "verdicts": [asdict(v) for v in verdicts],
        "mean_atomicity": (sum(atoms) / len(atoms)) if atoms else None,
        "conclusive_waves": sum(1 for v in verdicts if v.conclusive),
        "total_waves": len(verdicts),
        "loop_drops": sum(v.loop_drops for v in verdicts),
        "blackhole_drops": sum(v.blackhole_drops for v in verdicts),
        "attributed_blackholes": sum(v.attributed_blackholes
                                     for v in verdicts),
        "stale_devices": sorted({d for v in verdicts
                                 for d in v.stale_devices}),
    }


@trial("updates_sweep")
def run_updates_trial(spec: TrialSpec) -> TrialResult:
    schedule = UpdateSchedule.from_jsonable(spec.params["schedule"])
    verifier = UpdateVerifier(schedule)
    if spec.params.get("shards", 1) > 1:
        data = _sharded_cell(spec, schedule, verifier)
    else:
        data = _single_cell(spec, schedule, verifier)
    return make_result(spec, data)


@dataclass
class UpdatesResult:
    config: UpdatesConfig
    #: (scenario label, sigma_ns) -> trial data
    rows: dict[tuple[str, int], dict[str, Any]]

    def _series(self, label: str) -> list[tuple[int, dict[str, Any]]]:
        return sorted(((sigma, row) for (lab, sigma), row
                       in self.rows.items() if lab == label),
                      key=lambda item: item[0])

    @property
    def labels(self) -> list[str]:
        return sorted({label for label, _sigma in self.rows})

    @property
    def ordering_ok(self) -> bool:
        """The reproduction target: TimedSwap atomicity monotonically
        non-increasing in the injected clock error, TwoPhaseVersioned
        loop-free (and black-hole-free) at every level."""
        ok = True
        timed = [row["mean_atomicity"] for _s, row in self._series("timed")
                 if row["mean_atomicity"] is not None]
        ok &= all(a >= b - 1e-9 for a, b in zip(timed, timed[1:]))
        for _sigma, row in self._series("twophase"):
            ok &= row["loop_drops"] == 0 and row["blackhole_drops"] == 0
        return bool(ok)

    @property
    def all_audits_ok(self) -> bool:
        return all(row.get("audit_ok", True)
                   and row.get("consistency_ok", True)
                   for row in self.rows.values())

    def report(self) -> str:
        table = TextTable(["Strategy", "Clock err (us)", "Atomicity",
                           "Loops", "Black holes", "Attributed",
                           "Conclusive", "Audits"])
        for label in self.labels:
            for sigma, row in self._series(label):
                mean = row["mean_atomicity"]
                audit = "-"
                if "audit_ok" in row:
                    audit = ("OK" if row["audit_ok"]
                             and row["consistency_ok"] else "VIOLATED")
                table.add(label, f"{sigma / 1e3:g}",
                          f"{mean:.3f}" if mean is not None else "-",
                          row["loop_drops"], row["blackhole_drops"],
                          row["attributed_blackholes"],
                          f"{row['conclusive_waves']}/{row['total_waves']}",
                          audit)
        lines = [
            header("Coordinated updates, verified by snapshots",
                   "atomicity / loop / black-hole verdicts per strategy "
                   "and injected clock error (docs/UPDATES.md)"),
            table.render(),
            "atomicity = fraction of each wave's devices whose minimum "
            "captured ingress generation met the wave's expectation, "
            "averaged over conclusive waves.",
            f"expected ordering (timed degrades monotonically, twophase "
            f"loop-free at every level): "
            f"{'OK' if self.ordering_ok else 'VIOLATED'}",
        ]
        if not self.all_audits_ok:
            lines.append("*** AUDIT VIOLATIONS — snapshots corrupted by "
                         "an update; see per-row summaries ***")
        return "\n".join(lines)


def assemble(config: UpdatesConfig,
             results: Sequence[TrialResult]) -> UpdatesResult:
    return UpdatesResult(
        config=config,
        rows={(r.params["scenario"], r.params["sigma_ns"]): dict(r.data)
              for r in results})


def run(config: Optional[UpdatesConfig] = None,
        runner: Optional[TrialRunner] = None) -> UpdatesResult:
    config = config or UpdatesConfig()
    runner = runner or TrialRunner()
    return assemble(config, runner.run_batch(specs(config)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(UpdatesConfig.quick()).report())
