"""Shared measurement-campaign machinery for the use-case experiments.

Figures 12 and 13 both need the same thing: a workload running on the
testbed topology, and a time series of per-port metric values collected
either by synchronized snapshots or by the polling baseline.  This
module provides that, with matched parameters so the two collection
methods are compared apples-to-apples (same topology seed, same workload
seed, same cadence — only the measurement mechanism differs, exactly as
in §8.3/§8.4).

It also hosts the spec-construction helpers shared by every trial
function that runs a Poisson-driven snapshot campaign on the testbed
(Figure 9, the ablations, the sensitivity sweeps): network construction,
traffic start, and the campaign time window.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable
from typing import Optional

from repro.core import ObserverConfig, deploy
from repro.lb import EcmpBalancer, FlowletBalancer
from repro.polling import PollTarget, PollingConfig, PollingObserver
from repro.sim.clock import PTPConfig
from repro.sim.engine import MS, US
from repro.sim.network import Network, NetworkConfig
from repro.sim.switch import Direction
from repro.topology import leaf_spine
from repro.workloads import (GraphXPageRankWorkload, HadoopTerasortWorkload,
                             MemcacheWorkload, Workload)
from repro.workloads.graphx import GraphXConfig
from repro.workloads.hadoop import HadoopConfig
from repro.workloads.memcache import MemcacheConfig
from repro.workloads.synthetic import PoissonConfig, PoissonWorkload

#: Target = (switch, port, direction); a measurement round maps each
#: target to the metric value observed for it.
Target = tuple[str, int, Direction]
Round = dict[Target, int]


# ----------------------------------------------------------------------
# Spec-construction helpers shared across the trial functions
# ----------------------------------------------------------------------

def poisson_network(seed: int, hosts_per_leaf: int = 1,
                    ptp: Optional[PTPConfig] = None) -> Network:
    """The leaf-spine testbed used by the synchronization experiments."""
    config = (NetworkConfig(seed=seed) if ptp is None
              else NetworkConfig(seed=seed, ptp_config=ptp))
    return Network(leaf_spine(hosts_per_leaf=hosts_per_leaf), config)


def start_poisson(network: Network, *, seed: int, rate_pps: float,
                  stop_ns: int, sport_churn: bool = True) -> PoissonWorkload:
    """Dense all-pairs Poisson traffic (connection-churned so every
    gating channel stays hot — see fig9's module docstring)."""
    workload = PoissonWorkload(network, PoissonConfig(
        seed=seed, rate_pps=rate_pps, stop_ns=stop_ns,
        sport_churn=sport_churn))
    workload.start()
    return workload


def campaign_window(rounds: int, interval_ns: int, *,
                    lead_ns: int = 10 * MS,
                    settle_ns: int = 100 * MS) -> int:
    """Simulation duration covering a measurement campaign: lead-in,
    the campaign itself, and a drain/settle window for retries,
    shipping, and observer assembly."""
    return lead_ns + rounds * interval_ns + settle_ns


def make_balancer_factory(kind: str,
                          flowlet_timeout_ns: int = 20 * US) -> Callable[[int], object]:
    """LB factory for :class:`NetworkConfig` ("ecmp" or "flowlet").

    The flowlet timeout is an operator knob: it must exceed the
    equal-cost path-delay skew (sub-µs on the testbed topology) and sit
    below typical intra-burst gaps so that application bursts actually
    split across members; 20 µs does both for the §8 workloads.
    """
    if kind == "ecmp":
        return lambda salt: EcmpBalancer(salt)
    if kind == "flowlet":
        from repro.lb.flowlet import FlowletConfig
        return lambda salt: FlowletBalancer(FlowletConfig(
            salt=salt, timeout_ns=flowlet_timeout_ns))
    raise ValueError(f"unknown balancer {kind!r} (use 'ecmp' or 'flowlet')")


def make_workload(name: str, network: Network, *, seed: int,
                  stop_ns: int) -> Workload:
    """Instantiate one of the paper's three workloads by name.

    Rates are scaled down from application line rate so a measurement
    campaign simulates in seconds of wall time while preserving each
    workload's temporal texture (bursty shuffle waves / synchronized
    supersteps / smooth request streams) — the property the measurement
    comparison depends on.
    """
    if name == "hadoop":
        return HadoopTerasortWorkload(network, HadoopConfig(
            seed=seed, stop_ns=stop_ns, burst_gap_ns=30 * US,
            mean_burst_ns=2 * MS, mean_pause_ns=10 * MS))
    if name == "graphx":
        return GraphXPageRankWorkload(network, GraphXConfig(
            seed=seed, stop_ns=stop_ns))
    if name == "memcache":
        return MemcacheWorkload(network, MemcacheConfig(
            seed=seed, stop_ns=stop_ns, mean_request_gap_ns=100 * US))
    raise ValueError(f"unknown workload {name!r}")


@dataclass
class CampaignSpec:
    """Everything needed to run one measurement campaign."""

    workload: str
    balancer: str = "ecmp"
    metric: str = "ewma_interarrival"
    rounds: int = 60
    interval_ns: int = 5 * MS
    seed: int = 42
    hosts_per_leaf: int = 3
    #: Extra time after the last round for snapshot completion.
    settle_ns: int = 60 * MS
    #: Warmup before the first measurement (EWMA registers need traffic).
    warmup_ns: int = 20 * MS
    poll_read_ns: int = 425 * US
    #: Whether each switch's control-plane agent polls its ports
    #: concurrently with the others (Figure 9's round-spread calibration)
    #: or one observer sweeps every port in sequence (Figure 13's
    #: correlation study — concurrent chains would read the same-index
    #: ports of different switches at the same instant, which is not how
    #: a single polling observer behaves).
    poll_parallel_switches: bool = True

    @property
    def duration_ns(self) -> int:
        return (self.warmup_ns + self.rounds * self.interval_ns +
                self.settle_ns + 20 * MS)


def build_network(spec: CampaignSpec) -> Network:
    return Network(
        leaf_spine(hosts_per_leaf=spec.hosts_per_leaf),
        NetworkConfig(seed=spec.seed,
                      lb_factory=make_balancer_factory(spec.balancer)))


def uplink_egress_targets(network: Network) -> list[Target]:
    """The leaf uplink egress units — Figure 12's measurement points."""
    targets: list[Target] = []
    for leaf in sorted(network.switches):
        if not leaf.startswith("leaf"):
            continue
        for port in network.uplink_ports(leaf):
            targets.append((leaf, port, Direction.EGRESS))
    return targets


def all_egress_targets(network: Network) -> list[Target]:
    """Egress units of every connected leaf port — Figure 13's points."""
    targets: list[Target] = []
    for name in sorted(network.switches):
        if not name.startswith("leaf"):
            continue
        for port in network.switch(name).connected_ports():
            targets.append((name, port, Direction.EGRESS))
    return targets


def snapshot_campaign(spec: CampaignSpec,
                      target_fn: Callable[[Network], list[Target]]) -> list[Round]:
    """Collect rounds via synchronized snapshots (no channel state —
    both EWMA metrics are gauges)."""
    network = build_network(spec)
    workload = make_workload(spec.workload, network, seed=spec.seed + 1,
                             stop_ns=spec.duration_ns)
    workload.start()
    deployment = deploy(
        network, metric=spec.metric, channel_state=False, max_sid=4095,
        observer=ObserverConfig(lead_time_ns=spec.warmup_ns))
    targets = target_fn(network)
    epochs = deployment.schedule_campaign(spec.rounds, spec.interval_ns)
    last_wall = deployment.observer.snapshot(epochs[-1]).requested_wall_ns
    network.run(until=last_wall + spec.settle_ns)
    rounds: list[Round] = []
    for epoch in epochs:
        snap = deployment.observer.snapshot(epoch)
        if not snap.complete:
            continue
        rounds.append({(sw, port, d): snap.value_of(sw, port, d)
                       for (sw, port, d) in targets})
    return rounds


def polling_campaign(spec: CampaignSpec,
                     target_fn: Callable[[Network], list[Target]]) -> list[Round]:
    """Collect the same rounds via the sequential polling baseline."""
    network = build_network(spec)
    workload = make_workload(spec.workload, network, seed=spec.seed + 1,
                             stop_ns=spec.duration_ns)
    workload.start()
    # Counters must exist on the units; the Speedlight deployment
    # installs them but no snapshots are taken in this run.
    deploy(network, metric=spec.metric, channel_state=False, max_sid=4095)
    targets = target_fn(network)
    poller = PollingObserver(
        network,
        [PollTarget(sw, port, d, spec.metric) for (sw, port, d) in targets],
        PollingConfig(per_read_ns=spec.poll_read_ns, seed=spec.seed + 2,
                      parallel_across_switches=spec.poll_parallel_switches))
    network.sim.schedule(spec.warmup_ns, poller.run_campaign,
                         spec.rounds, spec.interval_ns)
    network.run(until=spec.duration_ns)
    rounds: list[Round] = []
    for round_ in poller.complete_rounds:
        rounds.append({(s.target.switch, s.target.port, s.target.direction):
                       s.value for s in round_.samples})
    return rounds


def rounds_to_balance_input(rounds: list[Round]) -> list[dict[str, dict[int, float]]]:
    """Regroup rounds for :func:`repro.analysis.stats.balance_stddevs`:
    per round, per switch, per port → value."""
    out = []
    for round_ in rounds:
        by_switch: dict[str, dict[int, float]] = {}
        for (sw, port, _d), value in round_.items():
            by_switch.setdefault(sw, {})[port] = float(value)
        out.append(by_switch)
    return out
