"""Figure 10: maximum sustained snapshot rate vs. ports per router.

The paper's experiment (§8.2): "we initiated a series of snapshots on a
single switch with fixed interval.  Snapshot frequencies that were too
high eventually resulted in notification drops.  The graphs plot the
highest frequency without drops."  The bottleneck is the unoptimized
control plane's serial notification processing (~110 µs per
notification in our model); each snapshot generates two notifications
per port (ingress + egress advance), so the sustainable rate falls
inversely with port count — >70 Hz at 64 ports, >1 kHz at 4.

The search runs a fixed-length snapshot burst at a candidate rate and
declares it *sustained* when the notification channel neither dropped
anything nor accumulated a growing backlog; a binary search then finds
the knee.  Each port count's full knee search is one trial spec (the
search is adaptive, so it cannot split further without changing the
result).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Optional

from repro.core import (ControlPlaneConfig, DeploymentConfig, ObserverConfig,
                        SpeedlightDeployment)
from repro.experiments.harness import TextTable, header
from repro.runtime import TrialResult, TrialRunner, TrialSpec, make_result, trial
from repro.sim.engine import MS, S
from repro.sim.network import Network, NetworkConfig
from repro.topology import single_switch


@dataclass
class Fig10Config:
    seed: int = 42
    port_counts: list[int] = field(default_factory=lambda: [4, 8, 16, 32, 64])
    #: Snapshots per probe burst (long enough for backlog growth to show).
    burst: int = 40
    #: Binary-search iterations (resolution ~ range / 2^iters).
    search_iterations: int = 9
    rate_floor_hz: float = 10.0
    rate_ceiling_hz: float = 20_000.0

    @classmethod
    def quick(cls) -> "Fig10Config":
        return cls(port_counts=[4, 16, 64], burst=25, search_iterations=7)


@dataclass
class Fig10Result:
    config: Fig10Config
    max_rate_hz: dict[int, float]

    def report(self) -> str:
        table = TextTable(["Ports/Router", "Max sustained rate (Hz)",
                           "paper (approx.)"])
        paper = {4: "~1100", 8: "~560", 16: "~280", 32: "~140", 64: ">70"}
        for ports in sorted(self.max_rate_hz):
            table.add(ports, f"{self.max_rate_hz[ports]:.0f}",
                      paper.get(ports, "-"))
        return "\n".join([
            header("Figure 10 — max sustained snapshot rate vs. port count",
                   "single switch, no channel state, notification-drop knee"),
            table.render()])


# ----------------------------------------------------------------------
# Trial decomposition
# ----------------------------------------------------------------------

def specs(config: Fig10Config) -> list[TrialSpec]:
    """One spec per port count (one full knee search each)."""
    return [TrialSpec(kind="fig10",
                      params=dict(ports=ports, burst=config.burst,
                                  search_iterations=config.search_iterations,
                                  rate_floor_hz=config.rate_floor_hz,
                                  rate_ceiling_hz=config.rate_ceiling_hz),
                      seed=config.seed, label=f"fig10/{ports}p")
            for ports in config.port_counts]


@trial("fig10")
def run_trial(spec: TrialSpec) -> TrialResult:
    p = spec.params
    config = Fig10Config(seed=spec.seed, port_counts=[p["ports"]],
                         burst=p["burst"],
                         search_iterations=p["search_iterations"],
                         rate_floor_hz=p["rate_floor_hz"],
                         rate_ceiling_hz=p["rate_ceiling_hz"])
    return make_result(spec, {"max_rate_hz": _max_rate(p["ports"], config)})


def assemble(config: Fig10Config,
             results: Sequence[TrialResult]) -> Fig10Result:
    return Fig10Result(config=config,
                       max_rate_hz={r.params["ports"]: r.data["max_rate_hz"]
                                    for r in results})


def run(config: Optional[Fig10Config] = None,
        runner: Optional[TrialRunner] = None) -> Fig10Result:
    config = config or Fig10Config()
    runner = runner or TrialRunner()
    return assemble(config, runner.run_batch(specs(config)))


# ----------------------------------------------------------------------
# Knee search (also reused by the service-cost and transport sweeps,
# which substitute their own control-plane configuration)
# ----------------------------------------------------------------------

def _sustained(ports: int, rate_hz: float, config: Fig10Config,
               control_plane: Optional[ControlPlaneConfig] = None) -> bool:
    """Run one burst at ``rate_hz``; True if the notification channel
    kept up (no drops, backlog drained)."""
    network = Network(single_switch(num_hosts=ports),
                      NetworkConfig(seed=config.seed))
    if control_plane is None:
        control_plane = ControlPlaneConfig(
            reinitiation_timeout_ns=0,  # retries would double the load
            probe_delay_ns=0)
    deployment = SpeedlightDeployment(network, DeploymentConfig(
        metric="packet_count", channel_state=False, max_sid=None,
        control_plane=control_plane,
        observer=ObserverConfig(retry_timeout_ns=10 * S)))
    interval_ns = int(1e9 / rate_hz)
    deployment.schedule_campaign(config.burst, interval_ns)
    # Run to the end of the burst plus a generous drain window.
    network.run(until=10 * MS + config.burst * interval_ns + 200 * MS)
    stats = deployment.notification_stats()
    if stats["dropped"] > 0:
        return False
    if stats["backlog"] > 0:
        return False  # still digesting long after the burst: not sustained
    # A sustained rate keeps the backlog bounded by roughly one
    # snapshot's worth of notifications (2 per port) plus slack for the
    # next burst arriving while the previous one drains.
    per_snapshot = 2 * ports
    cp = next(iter(deployment.control_planes.values()))
    return cp.channel.max_backlog <= 2.5 * per_snapshot


def _max_rate(ports: int, config: Fig10Config,
              control_plane: Optional[ControlPlaneConfig] = None) -> float:
    lo, hi = config.rate_floor_hz, config.rate_ceiling_hz
    if not _sustained(ports, lo, config, control_plane):
        return 0.0
    if _sustained(ports, hi, config, control_plane):
        return hi
    for _ in range(config.search_iterations):
        mid = (lo * hi) ** 0.5  # geometric: the plot is log-log
        if _sustained(ports, mid, config, control_plane):
            lo = mid
        else:
            hi = mid
    return lo


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().report())
