"""Figure 10: maximum sustained snapshot rate vs. ports per router.

The paper's experiment (§8.2): "we initiated a series of snapshots on a
single switch with fixed interval.  Snapshot frequencies that were too
high eventually resulted in notification drops.  The graphs plot the
highest frequency without drops."  The bottleneck is the unoptimized
control plane's serial notification processing (~110 µs per
notification in our model); each snapshot generates two notifications
per port (ingress + egress advance), so the sustainable rate falls
inversely with port count — >70 Hz at 64 ports, >1 kHz at 4.

The search runs a fixed-length snapshot burst at a candidate rate and
declares it *sustained* when the notification channel neither dropped
anything nor accumulated a growing backlog; a binary search then finds
the knee.  Each port count's full knee search is one trial spec (the
search is adaptive, so it cannot split further without changing the
result).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Optional

from repro.core import (AggregationConfig, ControlPlaneConfig,
                        ObserverConfig, deploy)
from repro.experiments.harness import TextTable, header
from repro.runtime import TrialResult, TrialRunner, TrialSpec, make_result, trial
from repro.sim.engine import MS, S
from repro.sim.network import Network, NetworkConfig
from repro.topology import fat_tree, single_switch


@dataclass
class Fig10Config:
    seed: int = 42
    port_counts: list[int] = field(default_factory=lambda: [4, 8, 16, 32, 64])
    #: Snapshots per probe burst (long enough for backlog growth to show).
    burst: int = 40
    #: Binary-search iterations (resolution ~ range / 2^iters).
    search_iterations: int = 9
    rate_floor_hz: float = 10.0
    rate_ceiling_hz: float = 20_000.0

    @classmethod
    def quick(cls) -> "Fig10Config":
        return cls(port_counts=[4, 16, 64], burst=25, search_iterations=7)


@dataclass
class Fig10Result:
    config: Fig10Config
    max_rate_hz: dict[int, float]

    def report(self) -> str:
        table = TextTable(["Ports/Router", "Max sustained rate (Hz)",
                           "paper (approx.)"])
        paper = {4: "~1100", 8: "~560", 16: "~280", 32: "~140", 64: ">70"}
        for ports in sorted(self.max_rate_hz):
            table.add(ports, f"{self.max_rate_hz[ports]:.0f}",
                      paper.get(ports, "-"))
        return "\n".join([
            header("Figure 10 — max sustained snapshot rate vs. port count",
                   "single switch, no channel state, notification-drop knee"),
            table.render()])


# ----------------------------------------------------------------------
# Trial decomposition
# ----------------------------------------------------------------------

def specs(config: Fig10Config) -> list[TrialSpec]:
    """One spec per port count (one full knee search each)."""
    return [TrialSpec(kind="fig10",
                      params=dict(ports=ports, burst=config.burst,
                                  search_iterations=config.search_iterations,
                                  rate_floor_hz=config.rate_floor_hz,
                                  rate_ceiling_hz=config.rate_ceiling_hz),
                      seed=config.seed, label=f"fig10/{ports}p")
            for ports in config.port_counts]


@trial("fig10")
def run_trial(spec: TrialSpec) -> TrialResult:
    p = spec.params
    config = Fig10Config(seed=spec.seed, port_counts=[p["ports"]],
                         burst=p["burst"],
                         search_iterations=p["search_iterations"],
                         rate_floor_hz=p["rate_floor_hz"],
                         rate_ceiling_hz=p["rate_ceiling_hz"])
    return make_result(spec, {"max_rate_hz": _max_rate(p["ports"], config)})


def assemble(config: Fig10Config,
             results: Sequence[TrialResult]) -> Fig10Result:
    return Fig10Result(config=config,
                       max_rate_hz={r.params["ports"]: r.data["max_rate_hz"]
                                    for r in results})


def run(config: Optional[Fig10Config] = None,
        runner: Optional[TrialRunner] = None) -> Fig10Result:
    config = config or Fig10Config()
    runner = runner or TrialRunner()
    return assemble(config, runner.run_batch(specs(config)))


# ----------------------------------------------------------------------
# Knee search (also reused by the service-cost and transport sweeps,
# which substitute their own control-plane configuration)
# ----------------------------------------------------------------------

def _sustained(ports: int, rate_hz: float, config: Fig10Config,
               control_plane: Optional[ControlPlaneConfig] = None) -> bool:
    """Run one burst at ``rate_hz``; True if the notification channel
    kept up (no drops, backlog drained)."""
    network = Network(single_switch(num_hosts=ports),
                      NetworkConfig(seed=config.seed))
    if control_plane is None:
        control_plane = ControlPlaneConfig(
            reinitiation_timeout_ns=0,  # retries would double the load
            probe_delay_ns=0)
    deployment = deploy(
        network, metric="packet_count", channel_state=False, max_sid=None,
        control_plane=control_plane,
        observer=ObserverConfig(retry_timeout_ns=10 * S))
    interval_ns = int(1e9 / rate_hz)
    deployment.schedule_campaign(config.burst, interval_ns)
    # Run to the end of the burst plus a generous drain window.
    network.run(until=10 * MS + config.burst * interval_ns + 200 * MS)
    stats = deployment.notification_stats()
    if stats["dropped"] > 0:
        return False
    if stats["backlog"] > 0:
        return False  # still digesting long after the burst: not sustained
    # A sustained rate keeps the backlog bounded by roughly one
    # snapshot's worth of notifications (2 per port) plus slack for the
    # next burst arriving while the previous one drains.
    per_snapshot = 2 * ports
    cp = next(iter(deployment.control_planes.values()))
    return cp.channel.max_backlog <= 2.5 * per_snapshot


def _max_rate(ports: int, config: Fig10Config,
              control_plane: Optional[ControlPlaneConfig] = None) -> float:
    lo, hi = config.rate_floor_hz, config.rate_ceiling_hz
    if not _sustained(ports, lo, config, control_plane):
        return 0.0
    if _sustained(ports, hi, config, control_plane):
        return hi
    for _ in range(config.search_iterations):
        mid = (lo * hi) ** 0.5  # geometric: the plot is log-log
        if _sustained(ports, mid, config, control_plane):
            lo = mid
        else:
            hi = mid
    return lo


# ----------------------------------------------------------------------
# Aggregation knee: the Fig. 10 bottleneck, network-wide, vs. fan-out
# ----------------------------------------------------------------------
#
# Figure 10 measures one switch; the real cliff is the *observer*: a
# whole-fabric snapshot lands O(units) records on a single host.  The
# hierarchical aggregation fabric (repro.core.aggregation) replaces that
# with a relay tree, so this companion experiment sweeps the same knee
# search over (fat-tree arity x tree degree).  Degree 0 is the honest
# flat baseline — every record is one message through a modeled observer
# intake — so the degree sweep isolates exactly what the tree buys.

@dataclass
class AggKneeConfig:
    seed: int = 42
    #: Fat-tree arities to sweep (k=4 -> 20 switches, k=8 -> 80).
    arities: list[int] = field(default_factory=lambda: [4, 8])
    #: Tree fan-outs to sweep; 0 is the flat-modeled observer intake.
    degrees: list[int] = field(default_factory=lambda: [0, 2, 4, 8])
    #: Snapshots per probe burst (long enough for backlog growth to show).
    burst: int = 10
    #: Geometric-search iterations (resolution ~ range^(1/2^iters)).
    search_iterations: int = 7
    rate_floor_hz: float = 0.5
    rate_ceiling_hz: float = 5_000.0

    @classmethod
    def quick(cls) -> "AggKneeConfig":
        return cls(arities=[4], degrees=[0, 4], burst=6,
                   search_iterations=6)


@dataclass
class AggKneeResult:
    config: AggKneeConfig
    #: (arity, degree) -> max sustained whole-fabric snapshot rate.
    max_rate_hz: dict[tuple[int, int], float]

    def speedup(self, arity: int, degree: int) -> Optional[float]:
        flat = self.max_rate_hz.get((arity, 0))
        rate = self.max_rate_hz.get((arity, degree))
        if not flat or rate is None:
            return None
        return rate / flat

    def report(self) -> str:
        table = TextTable(["k", "Switches", "Units", "Degree",
                           "Max rate (Hz)", "vs. flat"])
        for (arity, degree) in sorted(self.max_rate_hz):
            switches = 5 * arity ** 2 // 4
            units = 2 * arity * switches
            speedup = self.speedup(arity, degree)
            table.add(arity, switches, units,
                      "flat" if degree == 0 else degree,
                      f"{self.max_rate_hz[(arity, degree)]:.1f}",
                      "-" if speedup is None or degree == 0
                      else f"{speedup:.1f}x")
        return "\n".join([
            header("Aggregation knee — whole-fabric snapshot rate vs. "
                   "tree degree",
                   "the Fig. 10 bottleneck at the observer; degree 0 is "
                   "the flat per-record intake (docs/AGGREGATION.md)"),
            table.render(),
            "the flat intake collapses as O(units) records serialize at "
            "the observer; the tree turns that into O(fan-out) messages "
            "per epoch, so the knee moves up by roughly units/fan-in and "
            "degrades only gently with fabric size."])


def agg_specs(config: AggKneeConfig) -> list[TrialSpec]:
    """One spec per (arity, degree) cell (one full knee search each)."""
    return [TrialSpec(kind="fig10_agg",
                      params=dict(arity=arity, degree=degree,
                                  burst=config.burst,
                                  search_iterations=config.search_iterations,
                                  rate_floor_hz=config.rate_floor_hz,
                                  rate_ceiling_hz=config.rate_ceiling_hz),
                      seed=config.seed,
                      label=f"fig10-agg/k{arity}/d{degree}")
            for arity in config.arities
            for degree in config.degrees]


@trial("fig10_agg")
def run_agg_trial(spec: TrialSpec) -> TrialResult:
    p = spec.params
    config = AggKneeConfig(seed=spec.seed, arities=[p["arity"]],
                           degrees=[p["degree"]], burst=p["burst"],
                           search_iterations=p["search_iterations"],
                           rate_floor_hz=p["rate_floor_hz"],
                           rate_ceiling_hz=p["rate_ceiling_hz"])
    return make_result(spec, {
        "max_rate_hz": _agg_max_rate(p["arity"], p["degree"], config)})


def agg_assemble(config: AggKneeConfig,
                 results: Sequence[TrialResult]) -> AggKneeResult:
    return AggKneeResult(
        config=config,
        max_rate_hz={(r.params["arity"], r.params["degree"]):
                     r.data["max_rate_hz"] for r in results})


def run_agg(config: Optional[AggKneeConfig] = None,
            runner: Optional[TrialRunner] = None) -> AggKneeResult:
    config = config or AggKneeConfig()
    runner = runner or TrialRunner()
    return agg_assemble(config, runner.run_batch(agg_specs(config)))


def _agg_sustained(arity: int, degree: int, rate_hz: float,
                   config: AggKneeConfig) -> bool:
    """Run one whole-fabric burst at ``rate_hz``; True when every hop of
    the record path kept up: per-switch notification channels, relay
    agents, and the observer intake all drained without drops and
    without unbounded backlog."""
    network = Network(fat_tree(k=arity), NetworkConfig(seed=config.seed))
    deployment = deploy(
        network, metric="packet_count", channel_state=False, max_sid=None,
        control_plane=ControlPlaneConfig(
            reinitiation_timeout_ns=0,  # retries would double the load
            probe_delay_ns=0),
        observer=ObserverConfig(retry_timeout_ns=10 * S),
        aggregation=AggregationConfig(degree=degree))
    interval_ns = int(1e9 / rate_hz)
    deployment.schedule_campaign(config.burst, interval_ns)
    network.run(until=10 * MS + config.burst * interval_ns + 500 * MS)
    stats = deployment.notification_stats()
    if stats["dropped"] > 0 or stats["backlog"] > 0:
        return False
    for cp in deployment.control_planes.values():
        if cp.channel.max_backlog > 2.5 * 2 * len(cp.switch.connected_ports()):
            return False
    agg = deployment.aggregation.stats()
    if agg["dropped"] > 0 or agg["backlog"] > 0 or agg["records_lost"] > 0:
        return False
    if agg["intake_dropped"] > 0 or agg["intake_backlog"] > 0:
        return False
    # Bounded steady-state intake: the flat baseline lands one message
    # per unit per epoch, the tree a handful of aggregates (the root's
    # completes plus any partial flushes).
    units = sum(2 * len(deployment.network.switch(s).connected_ports())
                for s in deployment.switch_names)
    per_epoch = units if degree == 0 else 2 + degree
    return agg["intake_max_backlog"] <= 2.5 * per_epoch


def _agg_max_rate(arity: int, degree: int, config: AggKneeConfig) -> float:
    lo, hi = config.rate_floor_hz, config.rate_ceiling_hz
    if not _agg_sustained(arity, degree, lo, config):
        return 0.0
    if _agg_sustained(arity, degree, hi, config):
        return hi
    for _ in range(config.search_iterations):
        mid = (lo * hi) ** 0.5  # geometric: the plot is log-log
        if _agg_sustained(arity, degree, mid, config):
            lo = mid
        else:
            hi = mid
    return lo


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().report())
