"""Recovery-policy sweep: the completion-vs-overhead frontier.

§6's recovery machinery has knobs on both sides of the management plane
— control-plane re-initiation timeouts, liveness-probe delay, periodic
register polls, observer retry/device timeouts — and the paper tunes
them once, for one deployment.  This experiment asks the operator's
question instead: across fault profiles of increasing nastiness, *what
does each extra recovery message buy?*

Each trial runs one (policy, profile) cell on the leaf-spine testbed:
a channel-state snapshot campaign over Poisson traffic, the profile's
compiled fault schedule armed, and the
:class:`~repro.core.recovery.RecoveryPolicy` threaded through the
deployment.  Reported per cell:

* **usable rate** — fraction of campaign epochs that completed *and*
  stayed consistent (what an operator can actually chart);
* **completion rate** — epochs fully assembled, consistent or not;
* **overhead/epoch** — recovery messages per epoch: re-initiations +
  liveness probes + proactive register polls + observer-driven retry
  re-registrations.  Plain initiations are excluded: every policy pays
  those.

The report marks, per profile, the policies on the Pareto frontier
(no other policy has both strictly better usable rate and lower
overhead) — the completion-vs-overhead frontier the ROADMAP asks for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Any, Optional

from repro.core import DeploymentConfig, RecoveryPolicy, SpeedlightDeployment
from repro.core.recovery import RECOVERY_PRESETS
from repro.experiments.campaigns import campaign_window, start_poisson
from repro.experiments.harness import TextTable, header
from repro.faults import (CorrelatedGroup, FaultInjector, FaultProfile,
                          FaultSchedule, IndependentFaults, ProfileContext)
from repro.runtime import TrialResult, TrialRunner, TrialSpec, make_result, trial
from repro.sim.engine import MS
from repro.sim.network import Network, NetworkConfig
from repro.topology import leaf_spine

__all__ = [
    "RecoveryConfig",
    "RecoveryResult",
    "assemble",
    "default_profiles",
    "run",
    "run_recovery_trial",
    "specs",
]


def default_profiles() -> dict[str, dict]:
    """The standard fault ladder: clean baseline, independent chaos,
    correlated rack loss (pinned mid-campaign so it hits live epochs)."""
    return {
        "clean": IndependentFaults(intensity=0.0).to_jsonable(),
        "iid-0.5": IndependentFaults(
            intensity=0.5,
            kinds=("link_down", "link_loss", "cp_crash", "cp_overflow",
                   "cp_slow")).to_jsonable(),
        "rack-loss": (CorrelatedGroup(at_ns=25 * MS)
                      | IndependentFaults(
                          intensity=0.25,
                          kinds=("link_delay", "cp_slow"))).to_jsonable(),
    }


@dataclass
class RecoveryConfig:
    seed: int = 42
    #: Serialized :class:`RecoveryPolicy` objects to sweep (named
    #: presets by default; any JSON policy works).
    policies: list[dict] = field(default_factory=lambda: [
        RECOVERY_PRESETS[name].to_jsonable()
        for name in ("paper-default", "eager", "patient", "polling")])
    #: Fault-profile label -> serialized :class:`FaultProfile`.
    profiles: dict[str, dict] = field(default_factory=default_profiles)
    rounds: int = 10
    interval_ns: int = 5 * MS
    rate_pps: float = 20_000.0
    hosts_per_leaf: int = 1

    @classmethod
    def quick(cls) -> "RecoveryConfig":
        return cls(policies=[RECOVERY_PRESETS[name].to_jsonable()
                             for name in ("paper-default", "eager",
                                          "patient")],
                   rounds=6)


@dataclass
class RecoveryResult:
    config: RecoveryConfig
    #: (policy name, profile label) -> trial data.
    rows: dict[tuple[str, str], dict[str, Any]]

    def frontier(self, profile: str) -> set[str]:
        """Policies on the usable-vs-overhead Pareto frontier for one
        profile: no other policy is strictly better on one axis and at
        least as good on the other."""
        cells = {policy: row for (policy, prof), row in self.rows.items()
                 if prof == profile}
        frontier = set()
        for name, row in cells.items():
            dominated = any(
                (other["usable_rate"] >= row["usable_rate"]
                 and other["overhead_per_epoch"] < row["overhead_per_epoch"])
                or (other["usable_rate"] > row["usable_rate"]
                    and other["overhead_per_epoch"]
                    <= row["overhead_per_epoch"])
                for other_name, other in cells.items() if other_name != name)
            if not dominated:
                frontier.add(name)
        return frontier

    def report(self) -> str:
        table = TextTable(["Profile", "Policy", "Usable", "Complete",
                           "Median TTC (ms)", "Overhead/epoch", "Frontier"])
        profiles = sorted({prof for (_p, prof) in self.rows})
        for profile in profiles:
            frontier = self.frontier(profile)
            for (policy, prof) in sorted(self.rows):
                if prof != profile:
                    continue
                row = self.rows[(policy, prof)]
                ttc = row["median_ttc_ns"]
                table.add(profile, policy,
                          f"{row['usable_rate']:.2f}",
                          f"{row['completion_rate']:.2f}",
                          f"{ttc / 1e6:.2f}" if ttc is not None else "-",
                          f"{row['overhead_per_epoch']:.1f}",
                          "*" if policy in frontier else "")
        return "\n".join([
            header("Recovery policies — completion vs. overhead frontier",
                   "what each extra §6 recovery message buys, per fault "
                   "profile (docs/FAULTS.md)"),
            table.render(),
            "overhead counts re-initiations + probes + register polls + "
            "observer retries per epoch; '*' marks the Pareto frontier "
            "(no policy with strictly better usable rate at no more "
            "overhead).",
        ])


def specs(config: RecoveryConfig) -> list[TrialSpec]:
    """One spec per (policy, profile) cell; both specs ride in the
    params, so policy and profile are part of the cache fingerprint."""
    topo = leaf_spine(hosts_per_leaf=config.hosts_per_leaf)
    context = ProfileContext.for_topology(
        topo, horizon_ns=config.rounds * config.interval_ns,
        start_ns=10 * MS, seed=config.seed)
    result = []
    for policy_json in config.policies:
        policy = RecoveryPolicy.from_jsonable(policy_json)
        for label, profile_json in sorted(config.profiles.items()):
            profile = FaultProfile.from_jsonable(profile_json)
            result.append(TrialSpec(
                kind="recovery_sweep",
                params=dict(policy=policy.to_jsonable(),
                            profile_label=label,
                            schedule=profile.compile(context).to_jsonable(),
                            rounds=config.rounds,
                            interval_ns=config.interval_ns,
                            rate_pps=config.rate_pps,
                            hosts_per_leaf=config.hosts_per_leaf),
                seed=config.seed,
                label=f"recovery/{policy.name}/{label}"))
    return result


@trial("recovery_sweep")
def run_recovery_trial(spec: TrialSpec) -> TrialResult:
    p = spec.params
    policy = RecoveryPolicy.from_jsonable(p["policy"])
    schedule = FaultSchedule.from_jsonable(p["schedule"])
    network = Network(leaf_spine(hosts_per_leaf=p["hosts_per_leaf"]),
                      NetworkConfig(seed=spec.seed))
    duration = campaign_window(p["rounds"], p["interval_ns"])
    start_poisson(network, seed=spec.seed + 1, rate_pps=p["rate_pps"],
                  stop_ns=duration)
    deployment = SpeedlightDeployment(network, DeploymentConfig(
        metric="packet_count", channel_state=True, recovery=policy))
    injector = FaultInjector(network, schedule, deployment=deployment)
    injector.arm()
    epochs = deployment.schedule_campaign(p["rounds"], p["interval_ns"])
    network.run(until=duration)

    observer = deployment.observer
    snapshots = [observer.snapshot(epoch) for epoch in epochs]
    completed = [s for s in snapshots if s.complete]
    usable = [s for s in completed if s.consistent and not s.excluded_devices]
    spans = sorted(
        max(r.read_ns for r in s.records.values())
        - min(r.captured_ns for r in s.records.values())
        for s in completed if s.records)
    median_ttc = spans[len(spans) // 2] if spans else None

    reinitiations = sum(cp.reinitiations_sent
                        for cp in deployment.control_planes.values())
    probes = sum(cp.probes_sent
                 for cp in deployment.control_planes.values())
    polls = sum(cp.polls_performed
                for cp in deployment.control_planes.values())
    retries = sum(s.retries for s in snapshots)
    overhead = (reinitiations + probes + polls + retries) / len(snapshots)
    return make_result(spec, {
        "policy": policy.name,
        "profile": p["profile_label"],
        "total": len(snapshots),
        "completed": len(completed),
        "completion_rate": len(completed) / len(snapshots),
        "usable_rate": len(usable) / len(snapshots),
        "median_ttc_ns": median_ttc,
        "reinitiations": reinitiations,
        "probes": probes,
        "register_polls": polls,
        "observer_retries": retries,
        "overhead_per_epoch": overhead,
        "faults_applied": injector.applied,
    })


def assemble(config: RecoveryConfig,
             results: Sequence[TrialResult]) -> RecoveryResult:
    return RecoveryResult(
        config=config,
        rows={(r.data["policy"], r.data["profile"]): dict(r.data)
              for r in results})


def run(config: Optional[RecoveryConfig] = None,
        runner: Optional[TrialRunner] = None) -> RecoveryResult:
    config = config or RecoveryConfig()
    runner = runner or TrialRunner()
    return assemble(config, runner.run_batch(specs(config)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(RecoveryConfig.quick()).report())
