"""Recovery-policy sweep: the completion-vs-overhead frontier.

§6's recovery machinery has knobs on both sides of the management plane
— control-plane re-initiation timeouts, liveness-probe delay, periodic
register polls, observer retry/device timeouts — and the paper tunes
them once, for one deployment.  This experiment asks the operator's
question instead: across fault profiles of increasing nastiness, *what
does each extra recovery message buy?*

Each trial runs one (policy, profile) cell on the leaf-spine testbed:
a channel-state snapshot campaign over Poisson traffic, the profile's
compiled fault schedule armed, and the
:class:`~repro.core.recovery.RecoveryPolicy` threaded through the
deployment.  Reported per cell:

* **usable rate** — fraction of campaign epochs that completed *and*
  stayed consistent (what an operator can actually chart);
* **completion rate** — epochs fully assembled, consistent or not;
* **overhead/epoch** — recovery messages per epoch: re-initiations +
  liveness probes + proactive register polls + observer-driven retry
  re-registrations.  Plain initiations are excluded: every policy pays
  those.

The report marks, per profile, the policies on the Pareto frontier
(no other policy has both strictly better usable rate and lower
overhead) — the completion-vs-overhead frontier the ROADMAP asks for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Any, Optional

from repro.core import RecoveryPolicy, deploy
from repro.core.recovery import RECOVERY_PRESETS
from repro.core.sharded import OBSERVER_SHARD
from repro.experiments.campaigns import campaign_window, start_poisson
from repro.experiments.harness import TextTable, header
from repro.faults import (FAULT_KINDS, CorrelatedGroup, FaultInjector,
                          FaultProfile, FaultSchedule, IndependentFaults,
                          ProfileContext)
from repro.runtime import TrialResult, TrialRunner, TrialSpec, make_result, trial
from repro.sim.engine import MS
from repro.sim.network import Network, NetworkConfig
from repro.sim.shard import ShardWorker, run_sharded
from repro.topology import leaf_spine

__all__ = [
    "RecoveryConfig",
    "RecoveryResult",
    "assemble",
    "default_profiles",
    "run",
    "run_recovery_trial",
    "specs",
]


def default_profiles() -> dict[str, dict]:
    """The standard fault ladder: clean baseline, independent chaos,
    correlated rack loss (pinned mid-campaign so it hits live epochs)."""
    return {
        "clean": IndependentFaults(intensity=0.0).to_jsonable(),
        "iid-0.5": IndependentFaults(
            intensity=0.5,
            kinds=("link_down", "link_loss", "cp_crash", "cp_overflow",
                   "cp_slow")).to_jsonable(),
        "rack-loss": (CorrelatedGroup(at_ns=25 * MS)
                      | IndependentFaults(
                          intensity=0.25,
                          kinds=("link_delay", "cp_slow"))).to_jsonable(),
    }


@dataclass
class RecoveryConfig:
    seed: int = 42
    #: Serialized :class:`RecoveryPolicy` objects to sweep (named
    #: presets by default; any JSON policy works).
    policies: list[dict] = field(default_factory=lambda: [
        RECOVERY_PRESETS[name].to_jsonable()
        for name in ("paper-default", "eager", "patient", "polling")])
    #: Fault-profile label -> serialized :class:`FaultProfile`.
    profiles: dict[str, dict] = field(default_factory=default_profiles)
    rounds: int = 10
    interval_ns: int = 5 * MS
    rate_pps: float = 20_000.0
    hosts_per_leaf: int = 1
    #: Space-parallel simulation shards (:mod:`repro.sim.shard`).  With
    #: ``shards > 1`` each cell partitions the testbed across worker
    #: processes, every shard arms its slice of the fault schedule, and
    #: the recovery machinery runs across the cut.  Sharded deployments
    #: cannot collect channel state, so the sharded sweep exercises the
    #: clean-protocol recovery path (no Poisson workload; per-unit
    #: consistency flags only) — overheads and completion remain
    #: directly comparable across policies.
    shards: int = 1

    @classmethod
    def quick(cls) -> "RecoveryConfig":
        return cls(policies=[RECOVERY_PRESETS[name].to_jsonable()
                             for name in ("paper-default", "eager",
                                          "patient")],
                   rounds=6)


@dataclass
class RecoveryResult:
    config: RecoveryConfig
    #: (policy name, profile label) -> trial data.
    rows: dict[tuple[str, str], dict[str, Any]]

    def frontier(self, profile: str) -> set[str]:
        """Policies on the usable-vs-overhead Pareto frontier for one
        profile: no other policy is strictly better on one axis and at
        least as good on the other."""
        cells = {policy: row for (policy, prof), row in self.rows.items()
                 if prof == profile}
        frontier = set()
        for name, row in cells.items():
            dominated = any(
                (other["usable_rate"] >= row["usable_rate"]
                 and other["overhead_per_epoch"] < row["overhead_per_epoch"])
                or (other["usable_rate"] > row["usable_rate"]
                    and other["overhead_per_epoch"]
                    <= row["overhead_per_epoch"])
                for other_name, other in cells.items() if other_name != name)
            if not dominated:
                frontier.add(name)
        return frontier

    def report(self) -> str:
        table = TextTable(["Profile", "Policy", "Usable", "Complete",
                           "Median TTC (ms)", "Overhead/epoch", "Frontier"])
        profiles = sorted({prof for (_p, prof) in self.rows})
        for profile in profiles:
            frontier = self.frontier(profile)
            for (policy, prof) in sorted(self.rows):
                if prof != profile:
                    continue
                row = self.rows[(policy, prof)]
                ttc = row["median_ttc_ns"]
                table.add(profile, policy,
                          f"{row['usable_rate']:.2f}",
                          f"{row['completion_rate']:.2f}",
                          f"{ttc / 1e6:.2f}" if ttc is not None else "-",
                          f"{row['overhead_per_epoch']:.1f}",
                          "*" if policy in frontier else "")
        return "\n".join([
            header("Recovery policies — completion vs. overhead frontier",
                   "what each extra §6 recovery message buys, per fault "
                   "profile (docs/FAULTS.md)"),
            table.render(),
            "overhead counts re-initiations + probes + register polls + "
            "observer retries per epoch; '*' marks the Pareto frontier "
            "(no policy with strictly better usable rate at no more "
            "overhead).",
        ])


def specs(config: RecoveryConfig) -> list[TrialSpec]:
    """One spec per (policy, profile) cell; both specs ride in the
    params, so policy and profile are part of the cache fingerprint."""
    topo = leaf_spine(hosts_per_leaf=config.hosts_per_leaf)
    context = ProfileContext.for_topology(
        topo, horizon_ns=config.rounds * config.interval_ns,
        start_ns=10 * MS, seed=config.seed)
    result = []
    for policy_json in config.policies:
        policy = RecoveryPolicy.from_jsonable(policy_json)
        for label, profile_json in sorted(config.profiles.items()):
            profile = FaultProfile.from_jsonable(profile_json)
            result.append(TrialSpec(
                kind="recovery_sweep",
                params=dict(policy=policy.to_jsonable(),
                            profile_label=label,
                            schedule=profile.compile(context).to_jsonable(),
                            rounds=config.rounds,
                            interval_ns=config.interval_ns,
                            rate_pps=config.rate_pps,
                            hosts_per_leaf=config.hosts_per_leaf),
                seed=config.seed,
                label=f"recovery/{policy.name}/{label}",
                shards=config.shards))
    return result


def _shard_fault_slice(schedule: FaultSchedule, assignment: dict,
                       shard_id: int) -> FaultSchedule:
    """The events one shard must apply: switch/clock/control-plane
    targets it owns, link targets with at least one locally-owned
    endpoint (each direction's egress — including a cut link's boundary
    stub — lives on the sender's shard).  ``"*"`` stays on every shard;
    the injector resolves it against that shard's local inventory."""
    keep = []
    for event in schedule:
        if event.target == "*":
            keep.append(event)
        elif FAULT_KINDS[event.kind] == "link":
            ends = event.target.split("-", 1)
            if any(assignment.get(end) == shard_id for end in ends):
                keep.append(event)
        elif assignment.get(event.target) == shard_id:
            keep.append(event)
    return FaultSchedule(events=keep)


def _sharded_recovery_setup(worker: ShardWorker, policy_json: dict,
                            schedule_json: list, rounds: int,
                            interval_ns: int):
    """Per-shard setup for the sharded recovery sweep (module-level so
    the process runner can pickle it).  Clean protocol path: sharded
    deployments cannot see cross-cut gating sets, so channel state stays
    off and the sweep measures completion + recovery overhead."""
    deployment = deploy(worker, metric="packet_count",
                        recovery=RecoveryPolicy.from_jsonable(policy_json))
    local = _shard_fault_slice(FaultSchedule.from_jsonable(schedule_json),
                               worker.plan.assignment, worker.shard_id)
    injector = FaultInjector(worker.network, local, deployment=deployment)
    injector.arm()
    epochs: list[int] = []
    if deployment.is_observer_shard:
        epochs.extend(deployment.schedule_campaign(rounds, interval_ns))

    def finish() -> dict:
        cps = deployment.control_planes.values()
        result: dict = {
            "reinitiations": sum(cp.reinitiations_sent for cp in cps),
            "probes": sum(cp.probes_sent for cp in cps),
            "polls": sum(cp.polls_performed for cp in cps),
            "faults_applied": injector.applied,
        }
        if deployment.is_observer_shard:
            snapshots = [deployment.observer.snapshot(e) for e in epochs]
            completed = [s for s in snapshots if s.complete]
            usable = [s for s in completed
                      if s.consistent and not s.excluded_devices]
            spans = sorted(
                max(r.read_ns for r in s.records.values())
                - min(r.captured_ns for r in s.records.values())
                for s in completed if s.records)
            result.update(
                total=len(snapshots), completed=len(completed),
                usable=len(usable),
                median_ttc_ns=spans[len(spans) // 2] if spans else None,
                retries=sum(s.retries for s in snapshots))
        return result

    return finish


def _run_recovery_sharded(spec: TrialSpec) -> TrialResult:
    """The same (policy, profile) cell on a space-parallel simulation:
    every shard arms its slice of the compiled schedule, the observer
    shard assembles completion, and recovery overhead is summed across
    shards."""
    p = spec.params
    duration = campaign_window(p["rounds"], p["interval_ns"])
    results = run_sharded(
        leaf_spine(hosts_per_leaf=p["hosts_per_leaf"]),
        NetworkConfig(seed=spec.seed), shards=spec.shards,
        until=duration, setup=_sharded_recovery_setup,
        setup_args=(p["policy"], p["schedule"], p["rounds"],
                    p["interval_ns"]))
    observer = results[OBSERVER_SHARD]
    total = observer["total"]
    reinitiations = sum(r["reinitiations"] for r in results)
    probes = sum(r["probes"] for r in results)
    polls = sum(r["polls"] for r in results)
    retries = observer["retries"]
    overhead = (reinitiations + probes + polls + retries) / total
    return make_result(spec, {
        "policy": RecoveryPolicy.from_jsonable(p["policy"]).name,
        "profile": p["profile_label"],
        "total": total,
        "completed": observer["completed"],
        "completion_rate": observer["completed"] / total,
        "usable_rate": observer["usable"] / total,
        "median_ttc_ns": observer["median_ttc_ns"],
        "reinitiations": reinitiations,
        "probes": probes,
        "register_polls": polls,
        "observer_retries": retries,
        "overhead_per_epoch": overhead,
        "faults_applied": sum(r["faults_applied"] for r in results),
    })


@trial("recovery_sweep")
def run_recovery_trial(spec: TrialSpec) -> TrialResult:
    if spec.shards > 1:
        return _run_recovery_sharded(spec)
    p = spec.params
    policy = RecoveryPolicy.from_jsonable(p["policy"])
    schedule = FaultSchedule.from_jsonable(p["schedule"])
    network = Network(leaf_spine(hosts_per_leaf=p["hosts_per_leaf"]),
                      NetworkConfig(seed=spec.seed))
    duration = campaign_window(p["rounds"], p["interval_ns"])
    start_poisson(network, seed=spec.seed + 1, rate_pps=p["rate_pps"],
                  stop_ns=duration)
    deployment = deploy(network, metric="packet_count", channel_state=True,
                        recovery=policy)
    injector = FaultInjector(network, schedule, deployment=deployment)
    injector.arm()
    epochs = deployment.schedule_campaign(p["rounds"], p["interval_ns"])
    network.run(until=duration)

    observer = deployment.observer
    snapshots = [observer.snapshot(epoch) for epoch in epochs]
    completed = [s for s in snapshots if s.complete]
    usable = [s for s in completed if s.consistent and not s.excluded_devices]
    spans = sorted(
        max(r.read_ns for r in s.records.values())
        - min(r.captured_ns for r in s.records.values())
        for s in completed if s.records)
    median_ttc = spans[len(spans) // 2] if spans else None

    reinitiations = sum(cp.reinitiations_sent
                        for cp in deployment.control_planes.values())
    probes = sum(cp.probes_sent
                 for cp in deployment.control_planes.values())
    polls = sum(cp.polls_performed
                for cp in deployment.control_planes.values())
    retries = sum(s.retries for s in snapshots)
    overhead = (reinitiations + probes + polls + retries) / len(snapshots)
    return make_result(spec, {
        "policy": policy.name,
        "profile": p["profile_label"],
        "total": len(snapshots),
        "completed": len(completed),
        "completion_rate": len(completed) / len(snapshots),
        "usable_rate": len(usable) / len(snapshots),
        "median_ttc_ns": median_ttc,
        "reinitiations": reinitiations,
        "probes": probes,
        "register_polls": polls,
        "observer_retries": retries,
        "overhead_per_epoch": overhead,
        "faults_applied": injector.applied,
    })


def assemble(config: RecoveryConfig,
             results: Sequence[TrialResult]) -> RecoveryResult:
    return RecoveryResult(
        config=config,
        rows={(r.data["policy"], r.data["profile"]): dict(r.data)
              for r in results})


def run(config: Optional[RecoveryConfig] = None,
        runner: Optional[TrialRunner] = None) -> RecoveryResult:
    config = config or RecoveryConfig()
    runner = runner or TrialRunner()
    return assemble(config, runner.run_batch(specs(config)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(RecoveryConfig.quick()).report())
