"""Snapshots under failure: fault scenarios vs. snapshot health.

The paper's robustness story (§4.2, §6) is qualitative: dropped packets,
dropped notifications and slow control planes delay snapshots or mark
them inconsistent, but never corrupt them.  This experiment makes the
story quantitative.  Each trial runs a full snapshot campaign on the
leaf-spine testbed while a :class:`~repro.faults.FaultInjector` replays
a deterministic :class:`~repro.faults.FaultProfile` — by default the
classic :class:`~repro.faults.IndependentFaults` intensity sweep, or any
serialized profile (correlated rack loss, maintenance windows,
cascades, composites) via :attr:`FaultsConfig.profile` or the
``--fault-profile`` CLI flag.

Reported per scenario:

* **completion rate** — fraction of campaign epochs fully assembled;
* **time-to-complete** — median capture-to-read span of completed
  snapshots (faults stretch it via retries and recovery polls);
* **fraction marked inconsistent** — the protocol being *honest* about
  epochs whose channel state it could not guarantee;
* **per-epoch attribution** — which fault spans overlapped each
  degraded epoch's collection window
  (:mod:`repro.faults.attribution`), so a flagged epoch traces to the
  link flap or CP crash that caused it;
* **audit verdicts** — every completed-and-consistent snapshot must
  pass :class:`~repro.analysis.invariants.LinkAudit` (non-negative link
  discrepancies) and the ground-truth conservation law
  (:class:`~repro.analysis.consistency.ConsistencyChecker`).  Faults may
  stall or degrade snapshots; they must never make one silently wrong.

The fault profile and its compiled schedule are embedded in each
TrialSpec's params (their JSON forms), so they participate in the cache
fingerprint: change the scenario, invalidate the cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Any, Optional

from repro.analysis.consistency import ConsistencyChecker
from repro.analysis.invariants import LinkAudit
from repro.core import deploy
from repro.experiments.campaigns import campaign_window, start_poisson
from repro.experiments.harness import TextTable, header
from repro.faults import (CorrelatedGroup, FaultInjector, FaultProfile,
                          FaultSchedule, IndependentFaults, ProfileContext)
from repro.runtime import TrialResult, TrialRunner, TrialSpec, make_result, trial
from repro.sim.engine import MS
from repro.sim.network import Network, NetworkConfig
from repro.topology import leaf_spine

__all__ = [
    "DATAPLANE_KINDS",
    "DEFAULT_KINDS",
    "FaultsConfig",
    "FaultsResult",
    "PartialInvariance",
    "assemble",
    "partial_invariance",
    "run",
    "run_faults_trial",
    "scenarios",
    "specs",
]

#: Default fault mix: every kind the injector supports.
DEFAULT_KINDS = ["link_down", "link_loss", "link_delay", "queue_squeeze",
                 "unit_stall", "cp_crash", "cp_overflow", "cp_slow",
                 "clock_holdover", "clock_step"]

#: Fault mix for devices with no control plane (non-deployed switches in
#: a partial deployment): everything except the ``cp_*`` kinds, whose
#: targets would be unresolvable at arm() time.
DATAPLANE_KINDS = ["link_down", "link_loss", "link_delay", "queue_squeeze",
                   "unit_stall", "clock_holdover", "clock_step"]


@dataclass
class FaultsConfig:
    seed: int = 42
    #: Expected fault events per (kind, target) over the campaign window
    #: (the default IndependentFaults sweep; ignored when ``profile`` is
    #: set).
    intensities: list[float] = field(
        default_factory=lambda: [0.0, 0.25, 0.5, 1.0])
    rounds: int = 12
    interval_ns: int = 5 * MS
    rate_pps: float = 20_000.0
    hosts_per_leaf: int = 1
    kinds: list[str] = field(default_factory=lambda: list(DEFAULT_KINDS))
    mean_fault_duration_ns: int = 5 * MS
    #: Serialized :class:`~repro.faults.FaultProfile`
    #: (``profile.to_jsonable()``).  When set, the experiment runs this
    #: single scenario instead of the intensity sweep.
    profile: Optional[dict] = None
    #: Participating switches (§10 partial deployment); None = all.
    deploy_switches: Optional[list[str]] = None
    #: Restrict fault targets to these switches: switch/clock faults on
    #: members only, link faults on fabric links with a member endpoint.
    #: None = the full inventory.
    fault_switches: Optional[list[str]] = None

    @classmethod
    def quick(cls) -> "FaultsConfig":
        return cls(intensities=[0.0, 0.5], rounds=6)

    @classmethod
    def partial_spine(cls, intensity: float = 1.0) -> "FaultsConfig":
        """The §10 partial-deployment scenario: Speedlight on the leaves
        only, chaos aimed at the spines (which carry no snapshot state).
        Channels toward non-participating neighbors are excluded from
        gating, so spine failures may drop or delay traffic but must
        never flag an epoch — :func:`partial_invariance` asserts it."""
        return cls(intensities=[0.0, intensity], rounds=6,
                   kinds=list(DATAPLANE_KINDS),
                   deploy_switches=["leaf0", "leaf1"],
                   fault_switches=["spine0", "spine1"])

    @classmethod
    def correlated(cls) -> "FaultsConfig":
        """A correlated scenario: rack power loss (all fabric links + CP
        of one switch) on top of a mild independent background.  The
        group is pinned mid-campaign so it demonstrably lands on live
        epochs instead of wherever the uniform draw happens to fall."""
        profile = (CorrelatedGroup(at_ns=25 * MS)
                   | IndependentFaults(intensity=0.25,
                                       kinds=("link_delay", "cp_slow")))
        return cls(rounds=8, profile=profile.to_jsonable())


def scenarios(config: FaultsConfig) -> list[tuple[str, FaultProfile]]:
    """The (label, profile) pairs this config sweeps."""
    if config.profile is not None:
        profile = FaultProfile.from_jsonable(config.profile)
        return [(f"profile-{profile.profile_type}", profile)]
    return [(f"iid-{intensity:g}",
             IndependentFaults(intensity=intensity,
                               kinds=tuple(config.kinds),
                               mean_duration_ns=config.mean_fault_duration_ns))
            for intensity in config.intensities]


def _context_for(config: FaultsConfig) -> ProfileContext:
    """The compile context for the leaf-spine testbed: fabric links,
    switches, clocks; the campaign lead-in is left fault-free so epoch 1
    always has a clean initiation to recover from.  With
    ``fault_switches`` set, the inventory is narrowed to those devices
    (and the fabric links touching them)."""
    topo = leaf_spine(hosts_per_leaf=config.hosts_per_leaf)
    context = ProfileContext.for_topology(
        topo, horizon_ns=config.rounds * config.interval_ns,
        start_ns=10 * MS, seed=config.seed)
    if config.fault_switches is None:
        return context
    members = set(config.fault_switches)
    unknown = sorted(members - set(context.switches))
    if unknown:
        raise ValueError(
            f"fault_switches names unknown switch(es): {', '.join(unknown)}")
    return ProfileContext(
        horizon_ns=context.horizon_ns,
        links=tuple(link for link in context.links
                    if set(link.split("-")) & members),
        switches=tuple(s for s in context.switches if s in members),
        clocks=tuple(c for c in context.clocks if c in members),
        start_ns=context.start_ns, seed=context.seed)


@dataclass
class FaultsResult:
    config: FaultsConfig
    rows: dict[str, dict[str, Any]]  # scenario label -> trial data

    @property
    def all_audits_ok(self) -> bool:
        return all(row["audit_ok"] and row["consistency_ok"]
                   for row in self.rows.values())

    def report(self) -> str:
        table = TextTable(["Scenario", "Faults", "Completion",
                           "Median TTC (ms)", "Inconsistent", "Audits"])
        for label in sorted(self.rows):
            row = self.rows[label]
            ttc = row["median_ttc_ns"]
            table.add(label, row["faults_applied"],
                      f"{row['completion_rate']:.2f}",
                      f"{ttc / 1e6:.2f}" if ttc is not None else "-",
                      f"{row['inconsistent_fraction']:.2f}",
                      "OK" if row["audit_ok"] and row["consistency_ok"]
                      else "VIOLATED")
        lines = [
            header("Snapshots under failure — fault scenario sweep",
                   "completion / latency / honesty of snapshots as the "
                   "chaos layer turns up (docs/FAULTS.md)"),
            table.render(),
            "completed+consistent snapshots are audited against the "
            "link non-negativity invariant and the ground-truth "
            "conservation law; inconsistent epochs are *flagged*, "
            "never silently wrong.",
        ]
        attribution = self._attribution_lines()
        if attribution:
            lines.append("per-epoch attribution (degraded epochs and the "
                         "fault spans overlapping their windows):")
            lines.extend(attribution)
        if not self.all_audits_ok:
            lines.append("*** AUDIT VIOLATIONS — see per-row details ***")
        return "\n".join(lines)

    def _attribution_lines(self) -> list[str]:
        lines = []
        for label in sorted(self.rows):
            for att in self.rows[label].get("attribution", []):
                if att["complete"] and att["consistent"] \
                        and not att["excluded_devices"]:
                    continue
                state = []
                if not att["complete"]:
                    state.append("incomplete")
                if not att["consistent"]:
                    state.append("flagged inconsistent")
                if att["excluded_devices"]:
                    state.append(
                        "excluded " + ",".join(att["excluded_devices"]))
                culprits = ", ".join(
                    f"{s['kind']}({s['target']})"
                    for s in att["overlapping"]) or "no overlapping fault"
                lines.append(f"  {label}: epoch {att['epoch']} "
                             f"{' + '.join(state)} <- {culprits}")
        return lines


def specs(config: FaultsConfig) -> list[TrialSpec]:
    """One spec per fault scenario; profile and compiled schedule both
    ride in the params, so the scenario is part of the cache
    fingerprint."""
    context = _context_for(config)
    specs_out = []
    for label, profile in scenarios(config):
        params = dict(scenario=label,
                      profile=profile.to_jsonable(),
                      schedule=profile.compile(context).to_jsonable(),
                      rounds=config.rounds,
                      interval_ns=config.interval_ns,
                      rate_pps=config.rate_pps,
                      hosts_per_leaf=config.hosts_per_leaf)
        if config.deploy_switches is not None:
            # Added only when partial, so full-deployment fingerprints
            # (and their cached results) are unchanged.
            params["deploy"] = sorted(config.deploy_switches)
        specs_out.append(TrialSpec(kind="faults_sweep", params=params,
                                   seed=config.seed,
                                   label=f"faults/{label}"))
    return specs_out


@trial("faults_sweep")
def run_faults_trial(spec: TrialSpec) -> TrialResult:
    p = spec.params
    schedule = FaultSchedule.from_jsonable(p["schedule"])
    # Tracing on: the consistency audit replays ground truth from the
    # trace (campaigns.poisson_network has no tracing knob, so build
    # the leaf-spine network directly).
    network = Network(leaf_spine(hosts_per_leaf=p["hosts_per_leaf"]),
                      NetworkConfig(seed=spec.seed, enable_tracing=True))
    duration = campaign_window(p["rounds"], p["interval_ns"])
    start_poisson(network, seed=spec.seed + 1, rate_pps=p["rate_pps"],
                  stop_ns=duration)
    deployment = deploy(network, metric="packet_count", channel_state=True,
                        switches=p.get("deploy"))
    injector = FaultInjector(network, schedule, deployment=deployment)
    injector.arm()
    epochs = deployment.schedule_campaign(p["rounds"], p["interval_ns"])
    network.run(until=duration)

    observer = deployment.observer
    snapshots = [observer.snapshot(epoch) for epoch in epochs]
    completed = [s for s in snapshots if s.complete]
    inconsistent = [s for s in completed if not s.consistent]
    spans = sorted(
        max(r.read_ns for r in s.records.values())
        - min(r.captured_ns for r in s.records.values())
        for s in completed)
    median_ttc = spans[len(spans) // 2] if spans else None

    # Per-epoch attribution: which fault spans overlapped which epoch.
    attribution = injector.attribution(snapshots, horizon_ns=duration)

    # Verification: completed+consistent snapshots must pass both audits.
    link_audit = LinkAudit(network).audit_completed(snapshots)
    checker = ConsistencyChecker(deployment.ids, metric="packet_count")
    checker.ingest(network.trace_log)
    consistency = checker.audit(snapshots, channel_state=True)

    crashes = sum(cp.crashes for cp in deployment.control_planes.values())
    return make_result(spec, {
        "completed": len(completed),
        "total": len(snapshots),
        # Epochs the protocol had to flag: never assembled, or assembled
        # but honest about unguaranteed channel state.
        "flagged": (len(snapshots) - len(completed)) + len(inconsistent),
        "completion_rate": len(completed) / len(snapshots),
        "inconsistent_fraction": (len(inconsistent) / len(completed)
                                  if completed else 0.0),
        "median_ttc_ns": median_ttc,
        "faults_applied": injector.applied,
        "faults_reverted": injector.reverted,
        "cp_crashes": crashes,
        "attribution": [a.to_jsonable() for a in attribution],
        "epochs_faulted": sum(1 for a in attribution if a.faulted),
        "epochs_degraded": sum(1 for a in attribution if not a.clean),
        "audit_ok": link_audit.ok,
        "audit_summary": str(link_audit),
        "negative_discrepancies": len(link_audit.negative_discrepancies),
        "consistency_ok": consistency.ok,
        "consistency_summary": str(consistency),
        "consistency_violations": list(consistency.violations),
    })


def assemble(config: FaultsConfig,
             results: Sequence[TrialResult]) -> FaultsResult:
    return FaultsResult(config=config,
                        rows={r.params["scenario"]: dict(r.data)
                              for r in results})


def run(config: Optional[FaultsConfig] = None,
        runner: Optional[TrialRunner] = None) -> FaultsResult:
    config = config or FaultsConfig()
    runner = runner or TrialRunner()
    return assemble(config, runner.run_batch(specs(config)))


@dataclass
class PartialInvariance:
    """Outcome of the §10 partial-deployment invariance check."""

    result: FaultsResult
    baseline_flagged: int
    flagged_by_scenario: dict[str, int]

    @property
    def ok(self) -> bool:
        return (self.result.all_audits_ok
                and all(flagged == self.baseline_flagged
                        for flagged in self.flagged_by_scenario.values()))

    def report(self) -> str:
        lines = [self.result.report(), "",
                 "partial-deployment invariance (faults at non-deployed "
                 "spines vs. fault-free):"]
        for label in sorted(self.flagged_by_scenario):
            flagged = self.flagged_by_scenario[label]
            verdict = ("unchanged" if flagged == self.baseline_flagged
                       else f"CHANGED (baseline {self.baseline_flagged})")
            lines.append(f"  {label}: {flagged} flagged epoch(s) — "
                         f"{verdict}")
        if not self.ok:
            lines.append("*** PARTIAL-DEPLOYMENT INVARIANCE VIOLATED ***")
        return "\n".join(lines)


def partial_invariance(
        config: Optional[FaultsConfig] = None,
        runner: Optional[TrialRunner] = None) -> PartialInvariance:
    """Check that chaos at non-snapshot-boundary devices is invisible
    to snapshot health.

    Runs the partial-deployment sweep (leaves-only Speedlight, faults
    aimed at the spines) and compares each faulted scenario's
    flagged-epoch count — epochs incomplete or marked inconsistent —
    against the fault-free baseline in the same sweep.  Spine failures
    may drop or delay traffic, but the §10 neighbor-exclusion rule keeps
    non-participating devices out of every channel's gating set, so the
    counts must match exactly.
    """
    config = config or FaultsConfig.partial_spine()
    if 0.0 not in config.intensities:
        raise ValueError("partial_invariance needs the fault-free "
                         "baseline: include intensity 0.0")
    result = run(config, runner)
    baseline = result.rows["iid-0"]["flagged"]
    faulted = {label: row["flagged"]
               for label, row in result.rows.items() if label != "iid-0"}
    return PartialInvariance(result=result, baseline_flagged=baseline,
                             flagged_by_scenario=faulted)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(FaultsConfig.quick()).report())
