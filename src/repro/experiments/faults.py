"""Snapshots under failure: fault intensity vs. snapshot health.

The paper's robustness story (§4.2, §6) is qualitative: dropped packets,
dropped notifications and slow control planes delay snapshots or mark
them inconsistent, but never corrupt them.  This experiment makes the
story quantitative.  Each trial runs a full snapshot campaign on the
leaf-spine testbed while a :class:`~repro.faults.FaultInjector` replays
a deterministic fault profile (link flaps, Gilbert–Elliott burst loss,
latency spikes, buffer squeezes, unit stalls, control-plane crashes /
overflows / slowdowns, clock holdover and steps) compiled from a scalar
*intensity* — expected fault events per target over the campaign.

Reported per intensity:

* **completion rate** — fraction of campaign epochs fully assembled;
* **time-to-complete** — median capture-to-read span of completed
  snapshots (faults stretch it via retries and recovery polls);
* **fraction marked inconsistent** — the protocol being *honest* about
  epochs whose channel state it could not guarantee;
* **audit verdicts** — every completed-and-consistent snapshot must
  pass :class:`~repro.analysis.invariants.LinkAudit` (non-negative link
  discrepancies) and the ground-truth conservation law
  (:class:`~repro.analysis.consistency.ConsistencyChecker`).  Faults may
  stall or degrade snapshots; they must never make one silently wrong.

The fault profile is embedded in each TrialSpec's params (its JSON
form), so it participates in the cache fingerprint: change the
schedule, invalidate the cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Any, Optional

from repro.analysis.consistency import ConsistencyChecker
from repro.analysis.invariants import LinkAudit
from repro.core import DeploymentConfig, SpeedlightDeployment
from repro.experiments.campaigns import campaign_window, start_poisson
from repro.experiments.harness import TextTable, header
from repro.faults import FaultInjector, FaultSchedule, compile_profile
from repro.runtime import TrialResult, TrialRunner, TrialSpec, make_result, trial
from repro.sim.engine import MS
from repro.sim.network import Network, NetworkConfig
from repro.topology import leaf_spine
from repro.topology.graph import NodeKind

#: Default fault mix: every kind the injector supports.
DEFAULT_KINDS = ["link_down", "link_loss", "link_delay", "queue_squeeze",
                 "unit_stall", "cp_crash", "cp_overflow", "cp_slow",
                 "clock_holdover", "clock_step"]


@dataclass
class FaultsConfig:
    seed: int = 42
    #: Expected fault events per (kind, target) over the campaign window.
    intensities: list[float] = field(
        default_factory=lambda: [0.0, 0.25, 0.5, 1.0])
    rounds: int = 12
    interval_ns: int = 5 * MS
    rate_pps: float = 20_000.0
    hosts_per_leaf: int = 1
    kinds: list[str] = field(default_factory=lambda: list(DEFAULT_KINDS))
    mean_fault_duration_ns: int = 5 * MS

    @classmethod
    def quick(cls) -> "FaultsConfig":
        return cls(intensities=[0.0, 0.5], rounds=6)


@dataclass
class FaultsResult:
    config: FaultsConfig
    rows: dict[float, dict[str, Any]]

    @property
    def all_audits_ok(self) -> bool:
        return all(row["audit_ok"] and row["consistency_ok"]
                   for row in self.rows.values())

    def report(self) -> str:
        table = TextTable(["Intensity", "Faults", "Completion",
                           "Median TTC (ms)", "Inconsistent", "Audits"])
        for intensity in sorted(self.rows):
            row = self.rows[intensity]
            ttc = row["median_ttc_ns"]
            table.add(intensity, row["faults_applied"],
                      f"{row['completion_rate']:.2f}",
                      f"{ttc / 1e6:.2f}" if ttc is not None else "-",
                      f"{row['inconsistent_fraction']:.2f}",
                      "OK" if row["audit_ok"] and row["consistency_ok"]
                      else "VIOLATED")
        lines = [
            header("Snapshots under failure — fault intensity sweep",
                   "completion / latency / honesty of snapshots as the "
                   "chaos layer turns up (docs/FAULTS.md)"),
            table.render(),
            "completed+consistent snapshots are audited against the "
            "link non-negativity invariant and the ground-truth "
            "conservation law; inconsistent epochs are *flagged*, "
            "never silently wrong.",
        ]
        if not self.all_audits_ok:
            lines.append("*** AUDIT VIOLATIONS — see per-row details ***")
        return "\n".join(lines)


def _profile_for(config: FaultsConfig, intensity: float) -> FaultSchedule:
    """Compile the deterministic fault profile for one sweep point.

    Targets: switch-to-switch links (host links would just throttle the
    workload), every switch, every clock.  The campaign lead-in is left
    fault-free so epoch 1 always has a clean initiation to recover from.
    """
    topo = leaf_spine(hosts_per_leaf=config.hosts_per_leaf)
    switches = sorted(topo.switches)
    fabric_links = sorted(
        f"{spec.a}-{spec.b}" for spec in topo.links
        if topo.kind(spec.a) is NodeKind.SWITCH
        and topo.kind(spec.b) is NodeKind.SWITCH)
    horizon = config.rounds * config.interval_ns
    return compile_profile(
        intensity=intensity, horizon_ns=horizon, start_ns=10 * MS,
        links=fabric_links, switches=switches, clocks=switches,
        kinds=config.kinds, seed=config.seed,
        mean_duration_ns=config.mean_fault_duration_ns)


def specs(config: FaultsConfig) -> list[TrialSpec]:
    """One spec per fault intensity; the compiled schedule rides in the
    params, so the fault profile is part of the cache fingerprint."""
    return [TrialSpec(kind="faults_sweep",
                      params=dict(intensity=intensity,
                                  schedule=_profile_for(config,
                                                        intensity).to_jsonable(),
                                  rounds=config.rounds,
                                  interval_ns=config.interval_ns,
                                  rate_pps=config.rate_pps,
                                  hosts_per_leaf=config.hosts_per_leaf),
                      seed=config.seed,
                      label=f"faults/intensity-{intensity:g}")
            for intensity in config.intensities]


@trial("faults_sweep")
def run_faults_trial(spec: TrialSpec) -> TrialResult:
    p = spec.params
    schedule = FaultSchedule.from_jsonable(p["schedule"])
    # Tracing on: the consistency audit replays ground truth from the
    # trace (campaigns.poisson_network has no tracing knob, so build
    # the leaf-spine network directly).
    network = Network(leaf_spine(hosts_per_leaf=p["hosts_per_leaf"]),
                      NetworkConfig(seed=spec.seed, enable_tracing=True))
    duration = campaign_window(p["rounds"], p["interval_ns"])
    start_poisson(network, seed=spec.seed + 1, rate_pps=p["rate_pps"],
                  stop_ns=duration)
    deployment = SpeedlightDeployment(network, DeploymentConfig(
        metric="packet_count", channel_state=True))
    injector = FaultInjector(network, schedule, deployment=deployment)
    injector.arm()
    epochs = deployment.schedule_campaign(p["rounds"], p["interval_ns"])
    network.run(until=duration)

    observer = deployment.observer
    snapshots = [observer.snapshot(epoch) for epoch in epochs]
    completed = [s for s in snapshots if s.complete]
    inconsistent = [s for s in completed if not s.consistent]
    spans = sorted(
        max(r.read_ns for r in s.records.values())
        - min(r.captured_ns for r in s.records.values())
        for s in completed)
    median_ttc = spans[len(spans) // 2] if spans else None

    # Verification: completed+consistent snapshots must pass both audits.
    link_audit = LinkAudit(network).audit_completed(snapshots)
    checker = ConsistencyChecker(deployment.ids, metric="packet_count")
    checker.ingest(network.trace_log)
    consistency = checker.audit(snapshots, channel_state=True)

    crashes = sum(cp.crashes for cp in deployment.control_planes.values())
    return make_result(spec, {
        "completed": len(completed),
        "total": len(snapshots),
        "completion_rate": len(completed) / len(snapshots),
        "inconsistent_fraction": (len(inconsistent) / len(completed)
                                  if completed else 0.0),
        "median_ttc_ns": median_ttc,
        "faults_applied": injector.applied,
        "faults_reverted": injector.reverted,
        "cp_crashes": crashes,
        "audit_ok": link_audit.ok,
        "audit_summary": str(link_audit),
        "negative_discrepancies": len(link_audit.negative_discrepancies),
        "consistency_ok": consistency.ok,
        "consistency_summary": str(consistency),
        "consistency_violations": list(consistency.violations),
    })


def assemble(config: FaultsConfig,
             results: Sequence[TrialResult]) -> FaultsResult:
    return FaultsResult(config=config,
                        rows={r.params["intensity"]: dict(r.data)
                              for r in results})


def run(config: Optional[FaultsConfig] = None,
        runner: Optional[TrialRunner] = None) -> FaultsResult:
    config = config or FaultsConfig()
    runner = runner or TrialRunner()
    return assemble(config, runner.run_batch(specs(config)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run(FaultsConfig.quick()).report())
