"""Figure 12: evaluating load balancing with snapshots vs. polling.

The paper's §8.3 experiment: under each of the three workloads, measure
the EWMA of packet interarrival time on every leaf uplink port, compute
the standard deviation across uplinks of the same switch per measurement
round, and plot the CDF of those standard deviations for the four
combinations {ECMP, flowlet} × {snapshots, polling}.

Reproduction targets (shapes, not absolute values — see EXPERIMENTS.md):

* flowlet switching balances better than ECMP when measured with
  snapshots (lower stddev CDF);
* **Hadoop** — polling shows "little-to-no gain for flowlets, when in
  reality flowlets improve balance significantly";
* **GraphX** — "polling consistently underestimates the imbalance";
* **memcache** — very evenly distributed, "polling consistently
  overestimates the imbalance"; stddevs are µs-scale vs. Hadoop/GraphX's
  ms-scale.

Every (workload, balancer, method) combination is an independent
campaign, hence an independent trial spec — up to twelve-way parallel.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Optional

from repro.analysis.stats import Cdf, balance_stddevs
from repro.experiments.campaigns import (CampaignSpec, polling_campaign,
                                         rounds_to_balance_input,
                                         snapshot_campaign,
                                         uplink_egress_targets)
from repro.experiments.harness import TextTable, ascii_cdf, header
from repro.runtime import TrialResult, TrialRunner, TrialSpec, make_result, trial
from repro.sim.engine import MS

WORKLOADS = ("hadoop", "graphx", "memcache")
BALANCERS = ("ecmp", "flowlet")
METHODS = ("snapshots", "polling")


@dataclass
class Fig12Config:
    seed: int = 42
    rounds: int = 60
    interval_ns: int = 5 * MS
    workloads: tuple[str, ...] = WORKLOADS

    @classmethod
    def quick(cls) -> "Fig12Config":
        return cls(rounds=25)


@dataclass
class Fig12Result:
    config: Fig12Config
    #: (workload, balancer, method) -> CDF of balance stddevs (ns).
    cdfs: dict[tuple[str, str, str], Cdf]

    def report(self) -> str:
        lines = [header("Figure 12 — stddev of uplink load balance",
                        "EWMA of packet interarrival across same-switch "
                        "uplinks; lower = better balanced")]
        for workload in self.config.workloads:
            table = TextTable(["Series", "p50 (us)", "p90 (us)", "max (us)"])
            curves = {}
            for balancer in BALANCERS:
                for method in METHODS:
                    cdf = self.cdfs[(workload, balancer, method)]
                    table.add(f"{balancer} {method}", cdf.median / 1e3,
                              cdf.percentile(90) / 1e3, cdf.max / 1e3)
                    curves[f"{balancer}/{method}"] = cdf
            lines += [f"\n[{workload}]", table.render(), "",
                      ascii_cdf(curves, x_label="us (log)", x_scale=1e3)]
        lines.append(
            "\npaper shapes: flowlet < ECMP under snapshots; polling hides "
            "the flowlet gain (Hadoop), underestimates imbalance (GraphX), "
            "overestimates it (memcache, us-scale).")
        return "\n".join(lines)

    def median(self, workload: str, balancer: str, method: str) -> float:
        return self.cdfs[(workload, balancer, method)].median


# ----------------------------------------------------------------------
# Trial decomposition
# ----------------------------------------------------------------------

def specs(config: Fig12Config) -> list[TrialSpec]:
    """One spec per (workload, balancer, method) campaign."""
    out = []
    for workload in config.workloads:
        for balancer in BALANCERS:
            for method in METHODS:
                params = dict(workload=workload, balancer=balancer,
                              method=method, rounds=config.rounds,
                              interval_ns=config.interval_ns)
                out.append(TrialSpec(
                    kind="fig12", params=params, seed=config.seed,
                    label=f"fig12/{workload}/{balancer}/{method}"))
    return out


@trial("fig12")
def run_trial(spec: TrialSpec) -> TrialResult:
    p = spec.params
    campaign_spec = CampaignSpec(workload=p["workload"],
                                 balancer=p["balancer"],
                                 metric="ewma_interarrival",
                                 rounds=p["rounds"],
                                 interval_ns=p["interval_ns"],
                                 seed=spec.seed)
    campaign = (snapshot_campaign if p["method"] == "snapshots"
                else polling_campaign)
    rounds = campaign(campaign_spec, uplink_egress_targets)
    stddevs = balance_stddevs(rounds_to_balance_input(rounds))
    if not stddevs:
        raise RuntimeError(f"no complete rounds for {spec.describe()}")
    return make_result(spec, {"stddevs": stddevs})


def assemble(config: Fig12Config,
             results: Sequence[TrialResult]) -> Fig12Result:
    cdfs = {(r.params["workload"], r.params["balancer"], r.params["method"]):
            Cdf(r.data["stddevs"]) for r in results}
    return Fig12Result(config=config, cdfs=cdfs)


def run(config: Optional[Fig12Config] = None,
        runner: Optional[TrialRunner] = None) -> Fig12Result:
    config = config or Fig12Config()
    runner = runner or TrialRunner()
    return assemble(config, runner.run_batch(specs(config)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().report())
