"""Ablations of Speedlight's two key design choices.

1. **Hardware-constrained vs. idealised data plane**
   (:func:`run_ideal_vs_speedlight`).  Speedlight's data plane cannot
   loop over skipped snapshot IDs, so a unit that learns about several
   epochs at once forces the control plane to mark the intermediate ones
   inconsistent (§5.3/§6); the idealised Figure 3 protocol absorbs skips
   losslessly.  The ablation starves one switch of initiations (it
   learns epochs only from tagged traffic, arriving in jumps under
   sparse load) and compares how many snapshots survive consistent.

2. **Multi-initiator vs. single-initiator initiation**
   (:func:`run_initiation_strategies`).  Classic Chandy-Lamport starts
   at one node and floods outward with traffic; Speedlight initiates at
   *every* control plane simultaneously ("snapshots in our system are
   initiated at all nodes simultaneously", §3) precisely to bound
   synchronization by clock error instead of by traffic propagation
   time.  The ablation measures the sync spread CDF under both
   strategies on the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Optional

from repro.analysis.stats import Cdf
from repro.core import ControlPlaneConfig, ObserverConfig, deploy
from repro.experiments.campaigns import start_poisson
from repro.experiments.harness import TextTable, header
from repro.runtime import TrialResult, TrialRunner, TrialSpec, make_result, trial
from repro.sim.engine import MS
from repro.sim.network import Network, NetworkConfig
from repro.topology import leaf_spine, single_switch


# ----------------------------------------------------------------------
# Ablation 1: ideal vs Speedlight under initiation starvation
# ----------------------------------------------------------------------

@dataclass
class IdealVsSpeedlightConfig:
    seed: int = 42
    snapshots: int = 30
    interval_ns: int = 4 * MS
    rate_pps: float = 20_000.0
    #: This switch's management link drops most initiations: it hears
    #: only every ``starvation_period``-th epoch, so its host-facing
    #: units jump several IDs at once when one finally arrives (a total
    #: blackout would stall those units forever — the §6 dropped-
    #: initiation case that re-initiation exists to fix).
    starved_switch: str = "leaf1"
    starvation_period: int = 3

    @classmethod
    def quick(cls) -> "IdealVsSpeedlightConfig":
        return cls(snapshots=15)


@dataclass
class IdealVsSpeedlightResult:
    config: IdealVsSpeedlightConfig
    #: data-plane kind -> (complete, consistent) snapshot counts.
    outcomes: dict[str, dict[str, int]]

    def report(self) -> str:
        table = TextTable(["Data plane", "Complete", "Consistent",
                           "Consistent fraction"])
        for kind in ("speedlight", "ideal"):
            o = self.outcomes[kind]
            frac = o["consistent"] / o["complete"] if o["complete"] else 0.0
            table.add(kind, o["complete"], o["consistent"], f"{frac:.2f}")
        return "\n".join([
            header("Ablation — hardware-constrained vs. idealised data plane",
                   f"{self.config.starved_switch} hears only every "
                   f"{self.config.starvation_period}rd initiation; its units "
                   "jump several epochs at once"),
            table.render(),
            "expected: the ideal (Figure 3) protocol absorbs every jump; "
            "Speedlight must discard intermediate epochs as inconsistent."])


def _run_starved(config: IdealVsSpeedlightConfig, ideal: bool) -> dict[str, int]:
    network = Network(leaf_spine(hosts_per_leaf=1),
                      NetworkConfig(seed=config.seed))
    duration = 30 * MS + config.snapshots * config.interval_ns + 300 * MS
    start_poisson(network, seed=config.seed + 1, rate_pps=config.rate_pps,
                  stop_ns=duration)
    deployment = deploy(
        network, metric="packet_count", channel_state=True,
        ideal_units=ideal, max_sid=None if ideal else 4095,
        control_plane=ControlPlaneConfig(probe_delay_ns=0,
                                         reinitiation_timeout_ns=0),
        observer=ObserverConfig(retry_timeout_ns=200 * MS, max_retries=0))
    all_devices = sorted(deployment.control_planes)
    degraded = [n for n in all_devices if n != config.starved_switch]
    epochs = []
    for i in range(config.snapshots):
        initiators = (all_devices if i % config.starvation_period == 0
                      else degraded)
        epochs.append(deployment.observer.take_snapshot(
            at_wall_ns=network.sim.now + 10 * MS + i * config.interval_ns,
            initiators=initiators))
    network.run(until=duration)
    complete = consistent = 0
    for epoch in epochs:
        snap = deployment.observer.snapshot(epoch)
        if snap.complete:
            complete += 1
            if snap.consistent:
                consistent += 1
    return {"complete": complete, "consistent": consistent}


def ideal_specs(config: IdealVsSpeedlightConfig) -> list[TrialSpec]:
    """One spec per data-plane kind (speedlight, ideal)."""
    return [TrialSpec(kind="ablation_ideal",
                      params=dict(kind=kind, snapshots=config.snapshots,
                                  interval_ns=config.interval_ns,
                                  rate_pps=config.rate_pps,
                                  starved_switch=config.starved_switch,
                                  starvation_period=config.starvation_period),
                      seed=config.seed, label=f"ablation-ideal/{kind}")
            for kind in ("speedlight", "ideal")]


@trial("ablation_ideal")
def run_ideal_trial(spec: TrialSpec) -> TrialResult:
    p = spec.params
    config = IdealVsSpeedlightConfig(
        seed=spec.seed, snapshots=p["snapshots"],
        interval_ns=p["interval_ns"], rate_pps=p["rate_pps"],
        starved_switch=p["starved_switch"],
        starvation_period=p["starvation_period"])
    return make_result(spec, _run_starved(config, ideal=p["kind"] == "ideal"))


def ideal_assemble(config: IdealVsSpeedlightConfig,
                   results: Sequence[TrialResult]) -> IdealVsSpeedlightResult:
    return IdealVsSpeedlightResult(
        config=config,
        outcomes={r.params["kind"]: dict(r.data) for r in results})


def run_ideal_vs_speedlight(
        config: Optional[IdealVsSpeedlightConfig] = None,
        runner: Optional[TrialRunner] = None) -> IdealVsSpeedlightResult:
    config = config or IdealVsSpeedlightConfig()
    runner = runner or TrialRunner()
    return ideal_assemble(config, runner.run_batch(ideal_specs(config)))


# ----------------------------------------------------------------------
# Ablation 2: multi-initiator vs single-initiator
# ----------------------------------------------------------------------

@dataclass
class InitiationConfig:
    seed: int = 42
    snapshots: int = 30
    interval_ns: int = 8 * MS
    rate_pps: float = 20_000.0

    @classmethod
    def quick(cls) -> "InitiationConfig":
        return cls(snapshots=15)


@dataclass
class InitiationResult:
    config: InitiationConfig
    sync_multi: Cdf
    sync_single: Cdf

    def report(self) -> str:
        table = TextTable(["Strategy", "median (us)", "p90 (us)", "max (us)"])
        for label, cdf in (("multi-initiator (Speedlight)", self.sync_multi),
                           ("single-initiator (classic)", self.sync_single)):
            table.add(label, cdf.median / 1e3, cdf.percentile(90) / 1e3,
                      cdf.max / 1e3)
        return "\n".join([
            header("Ablation — initiation strategy",
                   "synchronization spread of snapshots (no channel state)"),
            table.render(),
            "expected: single-initiator sync is bounded by traffic "
            "propagation, orders of magnitude above the clock-bounded "
            "multi-initiator design."])


def _sync_samples(config: InitiationConfig,
                  initiators: Optional[list[str]]) -> list[float]:
    network = Network(leaf_spine(hosts_per_leaf=1),
                      NetworkConfig(seed=config.seed))
    duration = 30 * MS + config.snapshots * config.interval_ns + 200 * MS
    start_poisson(network, seed=config.seed + 1, rate_pps=config.rate_pps,
                  stop_ns=duration)
    deployment = deploy(network, metric="packet_count",
                        channel_state=False, max_sid=4095)
    epochs = [deployment.observer.take_snapshot(
        at_wall_ns=network.sim.now + 10 * MS + i * config.interval_ns,
        initiators=initiators) for i in range(config.snapshots)]
    network.run(until=duration)
    spreads = [deployment.sync_spread_ns(e) for e in epochs]
    return [float(s) for s in spreads if s is not None]


def initiation_specs(config: InitiationConfig) -> list[TrialSpec]:
    """One spec per initiation strategy."""
    return [TrialSpec(kind="ablation_initiation",
                      params=dict(strategy=strategy,
                                  snapshots=config.snapshots,
                                  interval_ns=config.interval_ns,
                                  rate_pps=config.rate_pps),
                      seed=config.seed, label=f"ablation-initiation/{strategy}")
            for strategy in ("multi", "single")]


@trial("ablation_initiation")
def run_initiation_trial(spec: TrialSpec) -> TrialResult:
    p = spec.params
    config = InitiationConfig(seed=spec.seed, snapshots=p["snapshots"],
                              interval_ns=p["interval_ns"],
                              rate_pps=p["rate_pps"])
    initiators = None if p["strategy"] == "multi" else ["spine0"]
    return make_result(spec, {"samples": _sync_samples(config, initiators)})


def initiation_assemble(config: InitiationConfig,
                        results: Sequence[TrialResult]) -> InitiationResult:
    samples = {r.params["strategy"]: r.data["samples"] for r in results}
    return InitiationResult(config=config,
                            sync_multi=Cdf(samples["multi"]),
                            sync_single=Cdf(samples["single"]))


def run_initiation_strategies(
        config: Optional[InitiationConfig] = None,
        runner: Optional[TrialRunner] = None) -> InitiationResult:
    config = config or InitiationConfig()
    runner = runner or TrialRunner()
    return initiation_assemble(config,
                               runner.run_batch(initiation_specs(config)))


# ----------------------------------------------------------------------
# Ablation 3: notification transport (raw socket vs P4 digest stream)
# ----------------------------------------------------------------------

@dataclass
class TransportConfig:
    seed: int = 42
    ports: int = 32
    #: Snapshots for the completion-latency measurement.
    snapshots: int = 20
    interval_ns: int = 25 * MS

    @classmethod
    def quick(cls) -> "TransportConfig":
        return cls(snapshots=10)


@dataclass
class TransportResult:
    config: TransportConfig
    #: transport -> max sustained snapshot rate (Hz), bulk regime.
    max_rate_hz: dict[str, float]
    #: transport -> median snapshot completion latency on a small
    #: (sparse-notification) switch — the latency-sensitive regime
    #: snapshot progress tracking lives in.
    completion_ns: dict[str, float]

    def report(self) -> str:
        table = TextTable(["Transport", "Max rate (Hz, 32 ports)",
                           "Sparse completion p50 (us, 4 ports)"])
        for transport in ("socket", "digest"):
            table.add(transport, f"{self.max_rate_hz[transport]:.0f}",
                      self.completion_ns[transport] / 1e3)
        return "\n".join([
            header("Ablation — notification transport",
                   "raw socket (paper's choice, §7.2) vs. P4 digest batching"),
            table.render(),
            "digests amortise CPU wakeups (higher bulk rate) but every "
            "sparse notification waits out the flush window — snapshot "
            "progress tracking is sparse and latency-sensitive, which is "
            "why the paper found raw sockets 'significantly better'."])


def _transport_cp_config(transport: str) -> ControlPlaneConfig:
    return ControlPlaneConfig(notification_transport=transport,
                              reinitiation_timeout_ns=0, probe_delay_ns=0)


def _transport_max_rate(config: TransportConfig, transport: str) -> float:
    # Reuse Fig 10's knee search with the transport's control-plane
    # configuration swapped in (no monkeypatching: _max_rate takes it).
    from repro.experiments.fig10 import Fig10Config, _max_rate

    return _max_rate(config.ports,
                     Fig10Config(seed=config.seed, burst=25,
                                 search_iterations=7),
                     control_plane=_transport_cp_config(transport))


def _transport_completion(config: TransportConfig, transport: str) -> float:
    # Sparse regime: a small switch emits a handful of notifications per
    # snapshot, so batching transports sit on the flush timer.
    network = Network(single_switch(num_hosts=4),
                      NetworkConfig(seed=config.seed))
    deployment = deploy(network, metric="packet_count", channel_state=False,
                        control_plane=_transport_cp_config(transport))
    finish_times: dict[int, int] = {}
    deployment.observer.on_complete(
        lambda snap: finish_times.setdefault(snap.epoch, network.sim.now))
    epochs = deployment.schedule_campaign(config.snapshots,
                                          config.interval_ns)
    network.run(until=20 * MS + config.snapshots * config.interval_ns
                + 300 * MS)
    latencies = []
    for epoch in epochs:
        snap = deployment.observer.snapshot(epoch)
        if epoch in finish_times:
            latencies.append(finish_times[epoch] - snap.requested_wall_ns)
    if not latencies:
        raise RuntimeError(f"no snapshot completed under {transport}")
    latencies.sort()
    return float(latencies[len(latencies) // 2])


def transport_specs(config: TransportConfig) -> list[TrialSpec]:
    """One spec per (transport, measurement) — four-way parallel."""
    return [TrialSpec(kind="ablation_transport",
                      params=dict(transport=transport, measure=measure,
                                  ports=config.ports,
                                  snapshots=config.snapshots,
                                  interval_ns=config.interval_ns),
                      seed=config.seed,
                      label=f"ablation-transport/{transport}/{measure}")
            for transport in ("socket", "digest")
            for measure in ("rate", "completion")]


@trial("ablation_transport")
def run_transport_trial(spec: TrialSpec) -> TrialResult:
    p = spec.params
    config = TransportConfig(seed=spec.seed, ports=p["ports"],
                             snapshots=p["snapshots"],
                             interval_ns=p["interval_ns"])
    measure = (_transport_max_rate if p["measure"] == "rate"
               else _transport_completion)
    return make_result(spec, {"value": measure(config, p["transport"])})


def transport_assemble(config: TransportConfig,
                       results: Sequence[TrialResult]) -> TransportResult:
    max_rate_hz: dict[str, float] = {}
    completion_ns: dict[str, float] = {}
    for r in results:
        bucket = (max_rate_hz if r.params["measure"] == "rate"
                  else completion_ns)
        bucket[r.params["transport"]] = r.data["value"]
    return TransportResult(config=config, max_rate_hz=max_rate_hz,
                           completion_ns=completion_ns)


def run_notification_transports(
        config: Optional[TransportConfig] = None,
        runner: Optional[TrialRunner] = None) -> TransportResult:
    config = config or TransportConfig()
    runner = runner or TrialRunner()
    return transport_assemble(config,
                              runner.run_batch(transport_specs(config)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run_ideal_vs_speedlight(IdealVsSpeedlightConfig.quick()).report())
    print()
    print(run_initiation_strategies(InitiationConfig.quick()).report())
    print()
    print(run_notification_transports(TransportConfig.quick()).report())
