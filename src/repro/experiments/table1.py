"""Table 1: resource usage of the Speedlight data plane on the Tofino.

Regenerates the paper's table (three variants at 64 ports) from the
analytical resource model, plus the 14-port wraparound+channel-state
configuration quoted in §7.1 (638 KB SRAM / 90 KB TCAM) and the "less
than 25% of any dedicated resource" utilization claim.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from collections.abc import Sequence
from typing import Optional

from repro.experiments.harness import TextTable, header
from repro.resources import TOFINO_1, ResourceReport, Variant, estimate
from repro.runtime import TrialResult, TrialRunner, TrialSpec, make_result, trial

#: The published Table 1 numbers (64-port configuration), used by the
#: report to show paper-vs-model side by side and by the test suite to
#: pin the model.
PAPER_TABLE1: dict[Variant, dict[str, float]] = {
    Variant.PACKET_COUNT: dict(stateless_alus=17, stateful_alus=9,
                               table_ids=27, gateways=15, stages=10,
                               sram_kb=606, tcam_kb=42),
    Variant.WRAP_AROUND: dict(stateless_alus=19, stateful_alus=9,
                              table_ids=35, gateways=19, stages=10,
                              sram_kb=671, tcam_kb=59),
    Variant.CHANNEL_STATE: dict(stateless_alus=24, stateful_alus=11,
                                table_ids=37, gateways=19, stages=12,
                                sram_kb=770, tcam_kb=244),
}

#: §7.1's quoted 14-port configuration.
PAPER_14PORT = dict(sram_kb=638, tcam_kb=90)


@dataclass
class Table1Config:
    ports: int = 64

    @classmethod
    def quick(cls) -> "Table1Config":
        return cls()


@dataclass
class Table1Result:
    reports: dict[Variant, ResourceReport]
    report_14port: ResourceReport

    def report(self) -> str:
        rows = [
            ("Stateless ALUs", "stateless_alus"),
            ("Stateful ALUs", "stateful_alus"),
            ("Logical Table IDs", "table_ids"),
            ("Conditional Table Gateways", "gateways"),
            ("Physical Stages", "stages"),
            ("SRAM (KB)", "sram_kb"),
            ("TCAM (KB)", "tcam_kb"),
        ]
        table = TextTable(["Resource", *(v.label for v in Variant),
                           "(paper)"])
        for label, attr in rows:
            cells = [label]
            for variant in Variant:
                cells.append(getattr(self.reports[variant], attr))
            cells.append("/".join(str(PAPER_TABLE1[v][attr]) for v in Variant))
            table.add(*cells)
        lines = [header("Table 1 — Speedlight data plane resource usage",
                        f"{next(iter(self.reports.values())).ports}-port "
                        "snapshots, per-port packet counters"),
                 table.render(), ""]
        lines.append(
            f"14-port wrap+chnl configuration: "
            f"{self.report_14port.sram_kb:.0f} KB SRAM / "
            f"{self.report_14port.tcam_kb:.0f} KB TCAM "
            f"(paper: {PAPER_14PORT['sram_kb']} / {PAPER_14PORT['tcam_kb']})")
        worst = max(self.reports[Variant.CHANNEL_STATE]
                    .utilization(TOFINO_1).values())
        lines.append(
            f"Max utilization of any dedicated resource (chnl-state build): "
            f"{worst:.1%} (paper claims < 25%)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Trial decomposition (a single cheap trial, kept uniform with the rest
# of the suite so Table 1 caches and batches like every figure)
# ----------------------------------------------------------------------

def _report_to_data(report: ResourceReport) -> dict[str, object]:
    doc = asdict(report)
    doc["variant"] = report.variant.value
    return doc


def _report_from_data(doc: dict[str, object]) -> ResourceReport:
    doc = dict(doc)
    doc["variant"] = Variant(doc["variant"])
    return ResourceReport(**doc)


def specs(config: Table1Config) -> list[TrialSpec]:
    return [TrialSpec(kind="table1", params=dict(ports=config.ports),
                      seed=0, label="table1")]


@trial("table1")
def run_trial(spec: TrialSpec) -> TrialResult:
    ports = spec.params["ports"]
    return make_result(spec, {
        "reports": {v.value: _report_to_data(estimate(v, ports))
                    for v in Variant},
        "report_14port": _report_to_data(estimate(Variant.CHANNEL_STATE, 14)),
    })


def assemble(config: Table1Config,
             results: Sequence[TrialResult]) -> Table1Result:
    (result,) = results
    return Table1Result(
        reports={Variant(name): _report_from_data(doc)
                 for name, doc in result.data["reports"].items()},
        report_14port=_report_from_data(result.data["report_14port"]))


def run(config: Optional[Table1Config] = None,
        runner: Optional[TrialRunner] = None) -> Table1Result:
    config = config or Table1Config()
    runner = runner or TrialRunner()
    return assemble(config, runner.run_batch(specs(config)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().report())
