"""Figure 9: synchronization of network-wide measurements.

The paper's experiment (§8.1): on the 4-switch leaf-spine testbed, take
repeated snapshots and measure, per snapshot ID, the difference between
the earliest and latest data-plane timestamps on any notification with
that ID.  Compare three approaches:

1. Speedlight without channel state   (paper: median ≈6.4 µs, max 22 µs)
2. Speedlight with channel state      (paper: median ≈6.4 µs, max 27 µs,
   longer tail — completion waits for upstream neighbors to advance)
3. traditional counter polling        (paper: median ≈2.6 ms first-to-
   last read in a round)

Simulation notes: the channel-state tail is governed by per-channel
packet interarrival (the Last Seen entry of a channel advances when the
first new-epoch packet crosses it), so the default configuration uses a
compact leaf-spine (one host per leaf) with dense, connection-churned
Poisson traffic to keep every gating channel hot — the shape (CS tail >
no-CS tail ≪ polling) is the reproduction target; see EXPERIMENTS.md.

Each series is one :class:`~repro.runtime.TrialSpec`; the three run
independently (and in parallel under ``--jobs``).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Optional

from repro.analysis.stats import Cdf
from repro.core import ControlPlaneConfig, deploy
from repro.experiments.campaigns import (campaign_window, poisson_network,
                                         start_poisson)
from repro.experiments.harness import (TextTable, ascii_cdf, drain_campaign,
                                       header)
from repro.polling import PollTarget, PollingConfig, PollingObserver
from repro.runtime import TrialResult, TrialRunner, TrialSpec, make_result, trial
from repro.sim.engine import MS, US
from repro.sim.switch import Direction

#: Spec series names, with the seed offsets the original serial
#: implementation used (kept so results stay comparable across PRs).
SERIES = (("switch_state", 0), ("channel_state", 10), ("polling", 20))


@dataclass
class Fig9Config:
    seed: int = 42
    #: Snapshots (and polling rounds) per series.
    rounds: int = 100
    #: Cadence of the measurement campaign.
    interval_ns: int = 2 * MS
    #: Per-pair Poisson rate; high so every gating channel sees new-epoch
    #: traffic within microseconds (the testbed ran at application line
    #: rates).
    rate_pps: float = 300_000.0
    hosts_per_leaf: int = 1
    #: Per-register read cost of the polling agent, calibrated so a full
    #: round spreads ~2.6 ms as on the testbed.
    poll_read_ns: int = 510 * US

    @classmethod
    def quick(cls) -> "Fig9Config":
        return cls(rounds=30, rate_pps=80_000.0)


@dataclass
class Fig9Result:
    config: Fig9Config
    sync_no_cs: Cdf
    sync_cs: Cdf
    polling: Cdf

    def report(self) -> str:
        table = TextTable(["Series", "median (us)", "p90 (us)", "p99 (us)",
                           "max (us)", "paper"])
        rows = [
            ("Switch State", self.sync_no_cs, "median ~6.4us, max 22us"),
            ("Switch + Channel State", self.sync_cs, "median ~6.4us, max 27us"),
            ("Polling", self.polling, "median ~2.6ms"),
        ]
        for label, cdf, paper in rows:
            table.add(label, cdf.median / 1e3, cdf.percentile(90) / 1e3,
                      cdf.percentile(99) / 1e3, cdf.max / 1e3, paper)
        plot = ascii_cdf({"switch state": self.sync_no_cs,
                          "+channel state": self.sync_cs,
                          "polling": self.polling},
                         x_label="us (log)", x_scale=1e3)
        return "\n".join([
            header("Figure 9 — synchronization of network-wide measurements",
                   f"{self.config.rounds} rounds on the leaf-spine testbed"),
            table.render(), "", plot])


# ----------------------------------------------------------------------
# Trial decomposition
# ----------------------------------------------------------------------

def specs(config: Fig9Config) -> list[TrialSpec]:
    """One spec per series (the three CDFs are independent trials)."""
    out = []
    for series, offset in SERIES:
        params = dict(series=series, seed_offset=offset,
                      rounds=config.rounds, interval_ns=config.interval_ns,
                      rate_pps=config.rate_pps,
                      hosts_per_leaf=config.hosts_per_leaf,
                      poll_read_ns=config.poll_read_ns)
        out.append(TrialSpec(kind="fig9", params=params, seed=config.seed,
                             label=f"fig9/{series}"))
    return out


@trial("fig9")
def run_trial(spec: TrialSpec) -> TrialResult:
    p = spec.params
    config = Fig9Config(seed=spec.seed, rounds=p["rounds"],
                        interval_ns=p["interval_ns"], rate_pps=p["rate_pps"],
                        hosts_per_leaf=p["hosts_per_leaf"],
                        poll_read_ns=p["poll_read_ns"])
    if p["series"] == "polling":
        samples = _polling_series(config, p["seed_offset"])
    else:
        samples = _snapshot_series(
            config, channel_state=(p["series"] == "channel_state"),
            seed_offset=p["seed_offset"])
    return make_result(spec, {"samples": samples})


def assemble(config: Fig9Config,
             results: Sequence[TrialResult]) -> Fig9Result:
    cdfs = {r.params["series"]: Cdf(r.data["samples"]) for r in results}
    return Fig9Result(config=config, sync_no_cs=cdfs["switch_state"],
                      sync_cs=cdfs["channel_state"], polling=cdfs["polling"])


def run(config: Optional[Fig9Config] = None,
        runner: Optional[TrialRunner] = None) -> Fig9Result:
    config = config or Fig9Config()
    runner = runner or TrialRunner()
    return assemble(config, runner.run_batch(specs(config)))


# ----------------------------------------------------------------------
# Series execution (pure functions of the reconstructed config)
# ----------------------------------------------------------------------

def _snapshot_series(config: Fig9Config, channel_state: bool,
                     seed_offset: int) -> list[int]:
    network = poisson_network(config.seed + seed_offset,
                              hosts_per_leaf=config.hosts_per_leaf)
    duration = campaign_window(config.rounds, config.interval_ns)
    start_poisson(network, seed=config.seed + 1, rate_pps=config.rate_pps,
                  stop_ns=duration)
    deployment = deploy(
        network, metric="packet_count", channel_state=channel_state,
        max_sid=4095, control_plane=ControlPlaneConfig(probe_delay_ns=0))
    epochs = deployment.schedule_campaign(config.rounds, config.interval_ns)
    drain_campaign(network, deployment, epochs, settle_ns=100 * MS)
    spreads = [deployment.sync_spread_ns(e) for e in epochs]
    samples = [s for s in spreads if s is not None]
    if not samples:
        raise RuntimeError("no snapshot produced notifications")
    return samples


def _polling_series(config: Fig9Config, seed_offset: int) -> list[int]:
    network = poisson_network(config.seed + seed_offset,
                              hosts_per_leaf=config.hosts_per_leaf)
    duration = campaign_window(config.rounds, config.interval_ns)
    start_poisson(network, seed=config.seed + 1, rate_pps=config.rate_pps,
                  stop_ns=duration)
    # Polling needs the counters in place; deploy Speedlight's counters
    # but take no snapshots (the polling framework reads the same
    # registers a snapshot would).
    deploy(network, metric="packet_count", channel_state=False)
    targets = [PollTarget(sw, port, direction, "packet_count")
               for sw in sorted(network.switches)
               for port in network.switch(sw).connected_ports()
               for direction in (Direction.INGRESS, Direction.EGRESS)]
    poller = PollingObserver(network, targets, PollingConfig(
        per_read_ns=config.poll_read_ns, seed=config.seed + 3))
    poller.run_campaign(config.rounds, config.interval_ns + 4 * MS)
    network.run(until=duration)
    rounds = poller.complete_rounds
    if not rounds:
        raise RuntimeError("no polling round completed")
    return [r.spread_ns for r in rounds]


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().report())
