"""The Figure 1 motivation, made quantitative.

§2.2 of the paper argues with a thought experiment: looking at two
egress queues ``x`` and ``y``, *asynchronous* measurements cannot
distinguish a network whose load is genuinely balanced from one whose
load ping-pongs between the queues — "the network could be perfectly
balanced or arbitrarily unbalanced — the measurements fail to
distinguish between the two cases."

This experiment constructs both regimes with **identical marginal
behaviour per queue** (each queue is deep half the time, empty half the
time, same average load):

* **synchronized** — both queues burst in the same phases (the balanced
  network: at any instant, load is even);
* **alternating** — exactly one queue bursts per phase (maximally
  unbalanced at every instant).

It then measures instantaneous queue depth with synchronized snapshots
and with the polling baseline (two reads ~1 ms apart, §2.1's quoted
per-counter cost) and reports the statistic that separates the regimes:
the mean simultaneous gap ``|depth_x - depth_y|``.  Snapshots separate
the regimes by an order of magnitude; polling reports nearly the same
gap for both — the motivating failure, quantified.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Optional

import numpy as np

from repro.core import ObserverConfig, deploy
from repro.experiments.harness import TextTable, header
from repro.polling import PollTarget, PollingConfig, PollingObserver
from repro.runtime import TrialResult, TrialRunner, TrialSpec, make_result, trial
from repro.sim.engine import MS, US
from repro.sim.network import Network, NetworkConfig
from repro.sim.switch import Direction
from repro.topology import single_switch

REGIMES = ("synchronized", "alternating")
METHODS = ("snapshots", "polling")


@dataclass
class MotivationConfig:
    seed: int = 42
    rounds: int = 120
    #: Measurement cadence; deliberately co-prime-ish with the burst
    #: period so rounds rotate through phases.
    interval_ns: int = 1_300_000
    #: Length of one phase (bursts occupy the first half of a phase).
    phase_ns: int = 700 * US
    #: Access-link speed: slow enough that a two-sender burst
    #: oversubscribes it and a standing queue forms.
    host_bw_bps: int = 1_000_000_000
    #: Per-sender packet gap during a burst (two senders at 12 us each
    #: arrive every 6 us vs. a 12 us drain: queue grows ~1 pkt / 12 us).
    burst_gap_ns: int = 12 * US
    #: The §2.1 per-counter polling cost (~1 ms), which also sets the
    #: offset between the two queue reads in one polling round.
    poll_read_ns: int = 1 * MS

    @classmethod
    def quick(cls) -> "MotivationConfig":
        return cls(rounds=60)


@dataclass
class MotivationResult:
    config: MotivationConfig
    #: (regime, method) -> mean |depth_x - depth_y| (packets).
    mean_gap: dict[tuple[str, str], float]
    #: (regime, method) -> mean depth_x + depth_y (load sanity check).
    mean_total: dict[tuple[str, str], float]

    def separation(self, method: str) -> float:
        """Measured unbalanced-to-balanced gap ratio: ~1 means the
        method cannot tell the regimes apart."""
        balanced = self.mean_gap[("synchronized", method)]
        alternating = self.mean_gap[("alternating", method)]
        return alternating / max(balanced, 1e-9)

    def report(self) -> str:
        table = TextTable(["Regime", "Method", "mean |x - y| (pkts)",
                           "mean x + y (pkts)"])
        for regime in REGIMES:
            for method in METHODS:
                table.add(regime, method,
                          self.mean_gap[(regime, method)],
                          self.mean_total[(regime, method)])
        return "\n".join([
            header("Figure 1 motivation — balanced vs. alternating queues",
                   "identical per-queue average load in both regimes"),
            table.render(),
            f"regime separation (gap ratio): snapshots "
            f"{self.separation('snapshots'):.1f}x, polling "
            f"{self.separation('polling'):.1f}x — a method reporting ~1x "
            "cannot answer Figure 1's question."])


def _drive_traffic(network: Network, config: MotivationConfig,
                   alternating: bool, duration_ns: int) -> None:
    """Phase-structured bursts toward two victim queues.

    Each *active* destination receives a half-phase burst from two
    senders that jointly oversubscribe its access link 2:1.  In the
    synchronized regime both destinations are active on even phases; in
    the alternating regime they take turns — per-queue marginals match,
    instants differ.
    """
    sim = network.sim
    # Each victim queue has its own dedicated sender pair, so a burst
    # always oversubscribes the victim 2:1 while no sender NIC ever
    # carries more than one flow (keeping the bottleneck at the victim).
    pairs = {"server2": ("server0", "server1"),
             "server3": ("server4", "server5")}
    burst_packets = (config.phase_ns // 2) // config.burst_gap_ns
    state = {"phase": 0}

    def run_phase() -> None:
        if sim.now >= duration_ns:
            return
        phase = state["phase"]
        if alternating:
            # Queues take turns: x bursts on even phases, y on odd.
            active = ["server2"] if phase % 2 == 0 else ["server3"]
        else:
            # Both burst together on even phases, both idle on odd —
            # per-queue marginals identical to the alternating regime.
            active = ["server2", "server3"] if phase % 2 == 0 else []
        for dst in active:
            for sender in pairs[dst]:
                network.host(sender).send_flow(
                    dst, burst_packets, sport=20_000 + phase, dport=5001,
                    size_bytes=1500, gap_ns=config.burst_gap_ns)
        state["phase"] += 1
        sim.schedule(config.phase_ns, run_phase)

    sim.schedule(0, run_phase)


def _measure(config: MotivationConfig, alternating: bool,
             method: str) -> tuple[float, float]:
    network = Network(single_switch(num_hosts=6,
                                    host_bw_bps=config.host_bw_bps),
                      NetworkConfig(seed=config.seed))
    duration = 20 * MS + config.rounds * config.interval_ns + 100 * MS
    _drive_traffic(network, config, alternating, duration)
    x_port = network.port_toward("sw0", "server2")
    y_port = network.port_toward("sw0", "server3")

    pairs: list[tuple[float, float]] = []
    if method == "snapshots":
        deployment = deploy(network, metric="queue_depth",
                            observer=ObserverConfig(lead_time_ns=5 * MS))
        epochs = deployment.schedule_campaign(config.rounds,
                                              config.interval_ns)
        network.run(until=duration)
        for epoch in epochs:
            snap = deployment.observer.snapshot(epoch)
            if not snap.complete:
                continue
            pairs.append((snap.value_of("sw0", x_port, Direction.EGRESS),
                          snap.value_of("sw0", y_port, Direction.EGRESS)))
    else:
        deploy(network, metric="queue_depth")
        poller = PollingObserver(
            network,
            [PollTarget("sw0", x_port, Direction.EGRESS, "queue_depth"),
             PollTarget("sw0", y_port, Direction.EGRESS, "queue_depth")],
            PollingConfig(per_read_ns=config.poll_read_ns, seed=config.seed + 1))
        poller.run_campaign(config.rounds, config.interval_ns + 1 * MS)
        network.run(until=duration)
        for round_ in poller.complete_rounds:
            values = {s.target.port: s.value for s in round_.samples}
            pairs.append((values[x_port], values[y_port]))

    if not pairs:
        raise RuntimeError(f"no rounds for {method}")
    gaps = [abs(x - y) for x, y in pairs]
    totals = [x + y for x, y in pairs]
    return float(np.mean(gaps)), float(np.mean(totals))


# ----------------------------------------------------------------------
# Trial decomposition
# ----------------------------------------------------------------------

def specs(config: MotivationConfig) -> list[TrialSpec]:
    """One spec per (regime, method) measurement."""
    out = []
    for regime in REGIMES:
        for method in METHODS:
            params = dict(regime=regime, method=method,
                          rounds=config.rounds,
                          interval_ns=config.interval_ns,
                          phase_ns=config.phase_ns,
                          host_bw_bps=config.host_bw_bps,
                          burst_gap_ns=config.burst_gap_ns,
                          poll_read_ns=config.poll_read_ns)
            out.append(TrialSpec(kind="motivation", params=params,
                                 seed=config.seed,
                                 label=f"motivation/{regime}/{method}"))
    return out


@trial("motivation")
def run_trial(spec: TrialSpec) -> TrialResult:
    p = spec.params
    config = MotivationConfig(seed=spec.seed, rounds=p["rounds"],
                              interval_ns=p["interval_ns"],
                              phase_ns=p["phase_ns"],
                              host_bw_bps=p["host_bw_bps"],
                              burst_gap_ns=p["burst_gap_ns"],
                              poll_read_ns=p["poll_read_ns"])
    gap, total = _measure(config, p["regime"] == "alternating", p["method"])
    return make_result(spec, {"mean_gap": gap, "mean_total": total})


def assemble(config: MotivationConfig,
             results: Sequence[TrialResult]) -> MotivationResult:
    mean_gap: dict[tuple[str, str], float] = {}
    mean_total: dict[tuple[str, str], float] = {}
    for r in results:
        key = (r.params["regime"], r.params["method"])
        mean_gap[key] = r.data["mean_gap"]
        mean_total[key] = r.data["mean_total"]
    return MotivationResult(config=config, mean_gap=mean_gap,
                            mean_total=mean_total)


def run(config: Optional[MotivationConfig] = None,
        runner: Optional[TrialRunner] = None) -> MotivationResult:
    config = config or MotivationConfig()
    runner = runner or TrialRunner()
    return assemble(config, runner.run_batch(specs(config)))


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().report())
