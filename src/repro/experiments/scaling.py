"""Protocol-level scaling study: the Figure 11 companion.

Figure 11's methodology (ours and the paper's) is a Monte-Carlo over
jitter distributions.  This experiment runs the *actual protocol* —
observer registration, per-switch control planes, initiation sweeps,
notification processing, record shipping — on progressively larger
fat-tree networks, and reports:

* realized snapshot synchronization (same §8.1 definition),
* completion: do all units finalize every epoch,
* end-to-end completion latency at the observer,
* notification load per switch.

Because initiation needs no data traffic (every unit hears the control
plane directly), the study isolates protocol scaling from workload
scaling; Speedlight's per-switch control planes mean the only
size-coupled quantity is the synchronization tail, exactly as §8.2
claims ("control planes are responsible for their own switch").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Optional

from repro.analysis.stats import Cdf
from repro.core import DeploymentConfig, ObserverConfig, SpeedlightDeployment
from repro.experiments.harness import TextTable, header
from repro.runtime import TrialResult, TrialRunner, TrialSpec, make_result, trial
from repro.sim.engine import MS
from repro.sim.network import Network, NetworkConfig
from repro.topology import fat_tree


@dataclass
class ScalingConfig:
    seed: int = 42
    #: Fat-tree arities to instantiate (k=4 -> 20 switches, k=6 -> 45,
    #: k=8 -> 80).
    arities: list[int] = field(default_factory=lambda: [4, 6, 8])
    snapshots: int = 15
    interval_ns: int = 10 * MS

    @classmethod
    def quick(cls) -> "ScalingConfig":
        return cls(arities=[4, 6], snapshots=8)


@dataclass
class ScalingPoint:
    switches: int
    units: int
    sync: Cdf
    completion_latency_ns: float
    completed: int
    expected: int
    notifications_per_switch: float


@dataclass
class ScalingResult:
    config: ScalingConfig
    points: dict[int, ScalingPoint]  # arity -> measurements

    def report(self) -> str:
        table = TextTable(["k", "Switches", "Units", "Sync p50 (us)",
                           "Sync max (us)", "Completion p50 (ms)",
                           "Complete", "Notifs/switch"])
        for arity in sorted(self.points):
            p = self.points[arity]
            table.add(arity, p.switches, p.units, p.sync.median / 1e3,
                      p.sync.max / 1e3, p.completion_latency_ns / 1e6,
                      f"{p.completed}/{p.expected}",
                      f"{p.notifications_per_switch:.0f}")
        return "\n".join([
            header("Scaling — the full protocol on growing fat-trees",
                   "end-to-end runs (not Monte-Carlo); every epoch must "
                   "complete on every unit"),
            table.render(),
            "expected: completion stays total; sync grows only via the "
            "max-over-more-samples tail; per-switch load tracks that "
            "switch's port count (2 notifications/port/snapshot), not "
            "the network size (§8.2: 'control planes are responsible "
            "for their own switch')."])


# ----------------------------------------------------------------------
# Trial decomposition
# ----------------------------------------------------------------------

def specs(config: ScalingConfig) -> list[TrialSpec]:
    """One spec per fat-tree arity."""
    return [TrialSpec(kind="scaling",
                      params=dict(arity=arity, snapshots=config.snapshots,
                                  interval_ns=config.interval_ns),
                      seed=config.seed, label=f"scaling/k{arity}")
            for arity in config.arities]


@trial("scaling")
def run_trial(spec: TrialSpec) -> TrialResult:
    p = spec.params
    config = ScalingConfig(seed=spec.seed, arities=[p["arity"]],
                           snapshots=p["snapshots"],
                           interval_ns=p["interval_ns"])
    point = _measure(config, p["arity"])
    return make_result(spec, {
        "switches": point.switches,
        "units": point.units,
        "sync_samples": [float(s) for s in point.sync.samples],
        "completion_latency_ns": point.completion_latency_ns,
        "completed": point.completed,
        "expected": point.expected,
        "notifications_per_switch": point.notifications_per_switch,
    })


def assemble(config: ScalingConfig,
             results: Sequence[TrialResult]) -> ScalingResult:
    points = {}
    for r in results:
        points[r.params["arity"]] = ScalingPoint(
            switches=r.data["switches"], units=r.data["units"],
            sync=Cdf(r.data["sync_samples"]),
            completion_latency_ns=r.data["completion_latency_ns"],
            completed=r.data["completed"], expected=r.data["expected"],
            notifications_per_switch=r.data["notifications_per_switch"])
    return ScalingResult(config=config, points=points)


def run(config: Optional[ScalingConfig] = None,
        runner: Optional[TrialRunner] = None) -> ScalingResult:
    config = config or ScalingConfig()
    runner = runner or TrialRunner()
    return assemble(config, runner.run_batch(specs(config)))


def _measure(config: ScalingConfig, arity: int) -> ScalingPoint:
    network = Network(fat_tree(k=arity), NetworkConfig(seed=config.seed))
    deployment = SpeedlightDeployment(network, DeploymentConfig(
        metric="packet_count",
        observer=ObserverConfig(lead_time_ns=10 * MS)))
    finish: dict[int, int] = {}
    deployment.observer.on_complete(
        lambda snap: finish.setdefault(snap.epoch, network.sim.now))
    epochs = deployment.schedule_campaign(config.snapshots,
                                          config.interval_ns)
    network.run(until=30 * MS + config.snapshots * config.interval_ns
                + 500 * MS)
    spreads = [deployment.sync_spread_ns(e) for e in epochs]
    sync = Cdf([s for s in spreads if s is not None])
    latencies = sorted(
        finish[e] - deployment.observer.snapshot(e).requested_wall_ns
        for e in epochs if e in finish)
    stats = deployment.notification_stats()
    num_switches = len(network.switches)
    units = sum(2 * len(network.switch(s).connected_ports())
                for s in network.switches)
    return ScalingPoint(
        switches=num_switches, units=units, sync=sync,
        completion_latency_ns=(latencies[len(latencies) // 2]
                               if latencies else float("nan")),
        completed=len(finish), expected=len(epochs),
        notifications_per_switch=stats["processed"] / num_switches)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().report())
