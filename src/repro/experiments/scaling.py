"""Protocol-level scaling study: the Figure 11 companion.

Figure 11's methodology (ours and the paper's) is a Monte-Carlo over
jitter distributions.  This experiment runs the *actual protocol* —
observer registration, per-switch control planes, initiation sweeps,
notification processing, record shipping — on progressively larger
fat-tree networks, and reports:

* realized snapshot synchronization (same §8.1 definition),
* completion: do all units finalize every epoch,
* end-to-end completion latency at the observer,
* notification load per switch.

Because initiation needs no data traffic (every unit hears the control
plane directly), the study isolates protocol scaling from workload
scaling; Speedlight's per-switch control planes mean the only
size-coupled quantity is the synchronization tail, exactly as §8.2
claims ("control planes are responsible for their own switch").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Optional

from repro.analysis.stats import Cdf
from repro.core import AggregationConfig, ObserverConfig, deploy
from repro.core.sharded import OBSERVER_SHARD
from repro.experiments.campaigns import start_poisson
from repro.experiments.harness import TextTable, header
from repro.faults import FaultInjector, FaultProfile, ProfileContext
from repro.runtime import TrialResult, TrialRunner, TrialSpec, make_result, trial
from repro.sim.engine import MS
from repro.sim.network import Network, NetworkConfig
from repro.sim.shard import ShardWorker, run_sharded
from repro.topology import fat_tree

__all__ = [
    "ScalingConfig",
    "ScalingPoint",
    "ScalingResult",
    "assemble",
    "run",
    "run_trial",
    "specs",
]


@dataclass
class ScalingConfig:
    seed: int = 42
    #: Fat-tree arities to instantiate (k=4 -> 20 switches, k=6 -> 45,
    #: k=8 -> 80).
    arities: list[int] = field(default_factory=lambda: [4, 6, 8])
    snapshots: int = 15
    interval_ns: int = 10 * MS
    #: Serialized :class:`~repro.faults.FaultProfile`.  When set, each
    #: arity compiles it against that fat-tree's own target inventory
    #: (fixed per-target intensity, growing target count), the
    #: deployment collects channel state over Poisson traffic, and the
    #: flagged-inconsistent fraction per arity becomes part of the
    #: reported curve.
    profile: Optional[dict] = None
    #: Aggregate Poisson traffic rate while a fault profile is active
    #: (channel state needs in-flight packets to be worth flagging).
    #: Divided evenly across all host pairs, so the *offered load* — and
    #: the simulation cost — stays constant as the fat-tree grows.
    rate_pps: float = 50_000.0
    #: Space-parallel simulation shards (:mod:`repro.sim.shard`).  With
    #: ``shards > 1`` the fat-tree is partitioned across worker
    #: processes with one Speedlight slice per shard; the clean protocol
    #: path only (fault profiles need channel state, which sharded
    #: deployments do not support).
    shards: int = 1
    #: Aggregation-tree fan-out (:mod:`repro.core.aggregation`).  None —
    #: the default — ships records over the flat unicast path; 0 models
    #: a flat observer intake; >= 1 routes records through a spanning
    #: relay tree of that degree (docs/AGGREGATION.md).
    agg_degree: Optional[int] = None

    @classmethod
    def quick(cls) -> "ScalingConfig":
        return cls(arities=[4, 6], snapshots=8)


@dataclass
class ScalingPoint:
    switches: int
    units: int
    sync: Cdf
    completion_latency_ns: float
    completed: int
    expected: int
    notifications_per_switch: float
    #: Fraction of completed epochs flagged inconsistent (fault-profile
    #: runs only; None for clean protocol-scaling runs).
    inconsistent_fraction: Optional[float] = None
    faults_applied: int = 0


@dataclass
class ScalingResult:
    config: ScalingConfig
    points: dict[int, ScalingPoint]  # arity -> measurements

    def report(self) -> str:
        faulted = any(p.inconsistent_fraction is not None
                      for p in self.points.values())
        columns = ["k", "Switches", "Units", "Sync p50 (us)",
                   "Sync max (us)", "Completion p50 (ms)",
                   "Complete", "Notifs/switch"]
        if faulted:
            columns += ["Inconsistent", "Faults"]
        table = TextTable(columns)
        for arity in sorted(self.points):
            p = self.points[arity]
            row = [arity, p.switches, p.units, p.sync.median / 1e3,
                   p.sync.max / 1e3, p.completion_latency_ns / 1e6,
                   f"{p.completed}/{p.expected}",
                   f"{p.notifications_per_switch:.0f}"]
            if faulted:
                row += ["-" if p.inconsistent_fraction is None
                        else f"{p.inconsistent_fraction:.2f}",
                        p.faults_applied]
            table.add(*row)
        closing = ("with a fault profile at fixed per-target intensity, "
                   "the flagged-inconsistent fraction per arity is the "
                   "curve of interest: honesty scales with the fabric."
                   if faulted else
                   "expected: completion stays total; sync grows only via "
                   "the max-over-more-samples tail; per-switch load tracks "
                   "that switch's port count (2 notifications/port/"
                   "snapshot), not the network size (§8.2: 'control planes "
                   "are responsible for their own switch').")
        return "\n".join([
            header("Scaling — the full protocol on growing fat-trees",
                   "end-to-end runs (not Monte-Carlo); every epoch must "
                   "complete on every unit"),
            table.render(),
            closing])


# ----------------------------------------------------------------------
# Trial decomposition
# ----------------------------------------------------------------------

def specs(config: ScalingConfig) -> list[TrialSpec]:
    """One spec per fat-tree arity.  The fault profile (if any) rides in
    the params, so it is part of the cache fingerprint; it is compiled
    per arity inside the trial, against that fat-tree's own targets."""
    params: dict = dict(snapshots=config.snapshots,
                        interval_ns=config.interval_ns)
    if config.profile is not None:
        params.update(profile=config.profile, rate_pps=config.rate_pps)
    return [TrialSpec(kind="scaling",
                      params=dict(params, arity=arity),
                      seed=config.seed, label=f"scaling/k{arity}",
                      shards=config.shards,
                      agg_degree=config.agg_degree)
            for arity in config.arities]


@trial("scaling")
def run_trial(spec: TrialSpec) -> TrialResult:
    p = spec.params
    config = ScalingConfig(seed=spec.seed, arities=[p["arity"]],
                           snapshots=p["snapshots"],
                           interval_ns=p["interval_ns"],
                           profile=p.get("profile"),
                           rate_pps=p.get("rate_pps", 5_000.0),
                           shards=spec.shards,
                           agg_degree=spec.agg_degree)
    measure = _measure_sharded if config.shards > 1 else _measure
    point = measure(config, p["arity"])
    return make_result(spec, {
        "switches": point.switches,
        "units": point.units,
        "sync_samples": [float(s) for s in point.sync.samples],
        "completion_latency_ns": point.completion_latency_ns,
        "completed": point.completed,
        "expected": point.expected,
        "notifications_per_switch": point.notifications_per_switch,
        "inconsistent_fraction": point.inconsistent_fraction,
        "faults_applied": point.faults_applied,
    })


def assemble(config: ScalingConfig,
             results: Sequence[TrialResult]) -> ScalingResult:
    points = {}
    for r in results:
        points[r.params["arity"]] = ScalingPoint(
            switches=r.data["switches"], units=r.data["units"],
            sync=Cdf(r.data["sync_samples"]),
            completion_latency_ns=r.data["completion_latency_ns"],
            completed=r.data["completed"], expected=r.data["expected"],
            notifications_per_switch=r.data["notifications_per_switch"],
            inconsistent_fraction=r.data.get("inconsistent_fraction"),
            faults_applied=r.data.get("faults_applied", 0))
    return ScalingResult(config=config, points=points)


def run(config: Optional[ScalingConfig] = None,
        runner: Optional[TrialRunner] = None) -> ScalingResult:
    config = config or ScalingConfig()
    runner = runner or TrialRunner()
    return assemble(config, runner.run_batch(specs(config)))


def _measure(config: ScalingConfig, arity: int) -> ScalingPoint:
    topo = fat_tree(k=arity)
    network = Network(topo, NetworkConfig(seed=config.seed))
    duration = 30 * MS + config.snapshots * config.interval_ns + 500 * MS
    injector = None
    if config.profile is not None:
        # Same per-target profile, bigger fabric: the compiled schedule
        # grows with the arity while each target's exposure stays fixed.
        profile = FaultProfile.from_jsonable(config.profile)
        context = ProfileContext.for_topology(
            topo, horizon_ns=config.snapshots * config.interval_ns,
            start_ns=10 * MS, seed=config.seed)
        schedule = profile.compile(context)
        hosts = len(topo.hosts)
        pairs = max(1, hosts * (hosts - 1))
        start_poisson(network, seed=config.seed + 1,
                      rate_pps=config.rate_pps / pairs, stop_ns=duration)
    deployment = deploy(
        network, metric="packet_count",
        channel_state=config.profile is not None,
        observer=ObserverConfig(lead_time_ns=10 * MS),
        aggregation=(None if config.agg_degree is None
                     else AggregationConfig(degree=config.agg_degree)))
    if config.profile is not None:
        injector = FaultInjector(network, schedule, deployment=deployment)
        injector.arm()
    finish: dict[int, int] = {}
    deployment.observer.on_complete(
        lambda snap: finish.setdefault(snap.epoch, network.sim.now))
    epochs = deployment.schedule_campaign(config.snapshots,
                                          config.interval_ns)
    network.run(until=duration)
    spreads = [deployment.sync_spread_ns(e) for e in epochs]
    sync = Cdf([s for s in spreads if s is not None])
    latencies = sorted(
        finish[e] - deployment.observer.snapshot(e).requested_wall_ns
        for e in epochs if e in finish)
    stats = deployment.notification_stats()
    num_switches = len(network.switches)
    units = sum(2 * len(network.switch(s).connected_ports())
                for s in network.switches)
    inconsistent_fraction = None
    if injector is not None:
        snaps = [deployment.observer.snapshot(e) for e in epochs]
        done = [s for s in snaps if s.complete]
        flagged = [s for s in done if not s.consistent]
        inconsistent_fraction = (len(flagged) / len(done)) if done else 0.0
    return ScalingPoint(
        switches=num_switches, units=units, sync=sync,
        completion_latency_ns=(latencies[len(latencies) // 2]
                               if latencies else float("nan")),
        completed=len(finish), expected=len(epochs),
        notifications_per_switch=stats["processed"] / num_switches,
        inconsistent_fraction=inconsistent_fraction,
        faults_applied=injector.applied if injector is not None else 0)


def _sharded_setup(worker: ShardWorker, snapshots: int, interval_ns: int,
                   lead_ns: int, agg_degree: Optional[int] = None):
    """Per-shard setup for the sharded scaling measurement.

    Module-level (and with plain-data arguments) so the process runner
    can pickle it.  The returned finish callable ships plain dicts back
    over the pipe: progress samples and notification stats from every
    shard, campaign bookkeeping from the observer shard only.
    """
    deployment = deploy(
        worker, metric="packet_count",
        observer=ObserverConfig(lead_time_ns=lead_ns),
        aggregation=(None if agg_degree is None
                     else AggregationConfig(degree=agg_degree)))
    finish_times: dict[int, int] = {}
    epochs: list[int] = []
    if deployment.is_observer_shard:
        deployment.observer.on_complete(
            lambda snap: finish_times.setdefault(snap.epoch,
                                                 worker.sim.now))
        epochs.extend(deployment.schedule_campaign(snapshots, interval_ns))

    def finish() -> dict:
        progress = []
        for cp in deployment.control_planes.values():
            progress.extend((e, t) for (e, _u, t) in cp.progress_log)
        result: dict = {
            "progress": progress,
            "notifications": deployment.notification_stats(),
            "events": worker.sim.events_run,
        }
        if deployment.is_observer_shard:
            result["epochs"] = list(epochs)
            result["finish"] = dict(finish_times)
            result["requested"] = {
                e: deployment.observer.snapshot(e).requested_wall_ns
                for e in epochs}
        return result

    return finish


def _measure_sharded(config: ScalingConfig, arity: int) -> ScalingPoint:
    """The same protocol-scaling measurement on a space-parallel
    simulation: the fat-tree is partitioned across worker processes,
    each runs its own Speedlight slice, and the observer (shard 0)
    coordinates campaigns across the cut (:mod:`repro.core.sharded`).
    Per-shard results are merged here in shard order."""
    if config.profile is not None:
        raise ValueError(
            "fault profiles need channel state, which sharded "
            "deployments do not support; run scaling with shards=1")
    topo = fat_tree(k=arity)
    duration = 30 * MS + config.snapshots * config.interval_ns + 500 * MS
    results = run_sharded(
        topo, NetworkConfig(seed=config.seed), shards=config.shards,
        until=duration, setup=_sharded_setup,
        setup_args=(config.snapshots, config.interval_ns, 10 * MS,
                    config.agg_degree))
    observer = results[OBSERVER_SHARD]
    epochs = observer["epochs"]
    finish = observer["finish"]
    # §8.1 synchronization, aggregated across shards: every shard
    # reports its units' data-plane timestamps per epoch.
    per_epoch: dict[int, list[int]] = {}
    for shard in results:
        for epoch, t in shard["progress"]:
            per_epoch.setdefault(epoch, []).append(t)
    spreads = []
    for epoch in epochs:
        times = per_epoch.get(epoch, [])
        if len(times) >= 2:
            spreads.append(max(times) - min(times))
    latencies = sorted(finish[e] - observer["requested"][e]
                       for e in epochs if e in finish)
    stats = {"received": 0, "processed": 0, "dropped": 0, "backlog": 0}
    for shard in results:
        for key in stats:
            stats[key] += shard["notifications"][key]
    num_switches = len(topo.switches)
    # Builders connect every port, so a switch's unit count is twice its
    # topological degree — same census _measure takes from the network.
    units = sum(2 * topo.degree(s) for s in topo.switches)
    return ScalingPoint(
        switches=num_switches, units=units, sync=Cdf(spreads),
        completion_latency_ns=(latencies[len(latencies) // 2]
                               if latencies else float("nan")),
        completed=len(finish), expected=len(epochs),
        notifications_per_switch=stats["processed"] / num_switches)


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(run().report())
