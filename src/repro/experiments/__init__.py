"""Experiment harness: one module per table/figure of the paper.

Every module exposes the same shape:

* a ``Config`` dataclass with a ``quick()`` classmethod (reduced sizes
  for CI/benchmarks) — the default constructor matches the paper's
  parameters as closely as simulation cost allows;
* ``specs(config) -> List[TrialSpec]`` — the experiment as a batch of
  independent, picklable trial specs (see :mod:`repro.runtime`);
* ``assemble(config, results) -> Result`` — folds the per-trial rows
  back into a structured result;
* ``run(config, runner=None) -> Result`` — convenience wrapper:
  ``assemble(config, runner.run_batch(specs(config)))``;
* ``Result.report() -> str`` — the rows/series the paper reports,
  formatted for the terminal.

Run any experiment directly::

    python -m repro.experiments.fig9
    python -m repro.experiments.table1

or the whole suite through the shared trial runner (parallel, cached)::

    python -m repro experiments --jobs 4

Index (see DESIGN.md for the full mapping):

==========  =============================================================
table1      Tofino resource usage of the three data-plane variants
fig9        CDF of measurement synchronization: snapshots vs. polling
fig10       max sustained snapshot rate vs. ports per router
fig11       average synchronization vs. network size (Monte-Carlo)
fig12       load-balance stddev CDFs: ECMP vs flowlet x snapshot vs poll
fig13       pairwise port correlations under GraphX: snapshots vs poll
ablations   ideal-vs-speedlight data plane; multi- vs single-initiator
==========  =============================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence
from typing import Optional

from repro.experiments import harness
from repro.runtime import TrialResult, TrialRunner, TrialSpec


@dataclass(frozen=True)
class Experiment:
    """A uniform handle on one paper experiment for the CLI/tools.

    ``specs``/``assemble`` expose the trial decomposition so callers can
    batch *several* experiments through one :class:`TrialRunner` (the
    CLI submits the whole suite as a single batch for maximum
    parallelism); ``run`` is the one-experiment convenience path.
    """

    name: str
    description: str
    config_cls: type
    specs: Callable[[object], list[TrialSpec]]
    assemble: Callable[[object, Sequence[TrialResult]], object]

    def config(self, quick: bool = False) -> object:
        return self.config_cls.quick() if quick else self.config_cls()

    def run(self, config: object,
            runner: Optional[TrialRunner] = None) -> object:
        runner = runner or TrialRunner()
        return self.assemble(config, runner.run_batch(self.specs(config)))


def registry() -> dict[str, Experiment]:
    """All paper experiments, in presentation order.

    Imports lazily so ``import repro.experiments`` (and light CLI
    commands like ``metrics``) stay cheap.
    """
    from repro.experiments import (ablations, faults, fig9, fig10, fig11,
                                   fig12, fig13, motivation, recovery,
                                   scaling, sweeps, table1, updates)

    entries = [
        Experiment("motivation", "Figure 1: balanced vs. alternating queues",
                   motivation.MotivationConfig, motivation.specs,
                   motivation.assemble),
        Experiment("table1", "data-plane resource usage on the Tofino",
                   table1.Table1Config, table1.specs, table1.assemble),
        Experiment("fig9", "synchronization CDFs: snapshots vs. polling",
                   fig9.Fig9Config, fig9.specs, fig9.assemble),
        Experiment("fig10", "max sustained snapshot rate vs. ports/router",
                   fig10.Fig10Config, fig10.specs, fig10.assemble),
        Experiment("fig10-agg",
                   "whole-fabric snapshot rate vs. aggregation degree",
                   fig10.AggKneeConfig, fig10.agg_specs,
                   fig10.agg_assemble),
        Experiment("fig11", "average synchronization vs. network size",
                   fig11.Fig11Config, fig11.specs, fig11.assemble),
        Experiment("fig12", "load-balance stddev: ECMP/flowlet x "
                   "snapshot/poll", fig12.Fig12Config, fig12.specs,
                   fig12.assemble),
        Experiment("fig13", "port correlations under GraphX",
                   fig13.Fig13Config, fig13.specs, fig13.assemble),
        Experiment("ablation-ideal",
                   "idealised vs. hardware-constrained data plane",
                   ablations.IdealVsSpeedlightConfig, ablations.ideal_specs,
                   ablations.ideal_assemble),
        Experiment("ablation-initiation", "multi- vs. single-initiator",
                   ablations.InitiationConfig, ablations.initiation_specs,
                   ablations.initiation_assemble),
        Experiment("ablation-transport",
                   "raw-socket vs. digest notifications",
                   ablations.TransportConfig, ablations.transport_specs,
                   ablations.transport_assemble),
        Experiment("sweep-service-cost",
                   "Fig 10 knee vs. per-notification CPU cost",
                   sweeps.ServiceCostSweepConfig, sweeps.service_cost_specs,
                   sweeps.service_cost_assemble),
        Experiment("sweep-ptp", "snapshot sync vs. clock quality (PTP->NTP)",
                   sweeps.PtpSweepConfig, sweeps.ptp_specs,
                   sweeps.ptp_assemble),
        Experiment("sweep-rate", "channel-state sync vs. traffic rate",
                   sweeps.RateSweepConfig, sweeps.rate_specs,
                   sweeps.rate_assemble),
        Experiment("scaling", "full protocol on growing fat-trees",
                   scaling.ScalingConfig, scaling.specs, scaling.assemble),
        Experiment("faults", "snapshot health vs. fault intensity (chaos)",
                   faults.FaultsConfig, faults.specs, faults.assemble),
        Experiment("recovery",
                   "completion-vs-overhead frontier of recovery policies",
                   recovery.RecoveryConfig, recovery.specs,
                   recovery.assemble),
        Experiment("updates",
                   "coordinated-update verdicts vs. injected clock error",
                   updates.UpdatesConfig, updates.specs, updates.assemble),
    ]
    return {e.name: e for e in entries}


__all__ = ["Experiment", "harness", "registry"]
