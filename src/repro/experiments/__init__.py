"""Experiment harness: one module per table/figure of the paper.

Every module exposes the same shape:

* a ``Config`` dataclass with a ``quick()`` classmethod (reduced sizes
  for CI/benchmarks) — the default constructor matches the paper's
  parameters as closely as simulation cost allows;
* ``run(config) -> Result`` — executes the experiment and returns a
  structured result;
* ``Result.report() -> str`` — the rows/series the paper reports,
  formatted for the terminal.

Run any experiment directly::

    python -m repro.experiments.fig9
    python -m repro.experiments.table1

Index (see DESIGN.md for the full mapping):

==========  =============================================================
table1      Tofino resource usage of the three data-plane variants
fig9        CDF of measurement synchronization: snapshots vs. polling
fig10       max sustained snapshot rate vs. ports per router
fig11       average synchronization vs. network size (Monte-Carlo)
fig12       load-balance stddev CDFs: ECMP vs flowlet x snapshot vs poll
fig13       pairwise port correlations under GraphX: snapshots vs poll
ablations   ideal-vs-speedlight data plane; multi- vs single-initiator
==========  =============================================================
"""

from repro.experiments import harness

__all__ = ["harness"]
