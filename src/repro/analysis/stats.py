"""Statistics used by the paper's evaluation.

* CDFs (Figures 9 and 12 are CDF plots);
* standard deviation of per-uplink load (Figure 12's balance metric:
  "the standard deviation of the EWMA of packet interarrival times
  across uplink ports ... uplinks were compared only to other uplinks on
  the same switch");
* pairwise Spearman rank correlation with significance filtering
  (Figure 13: "calculated pairwise correlation between ports using
  Spearman tests ... statistically significant (ρ < 0.1)" — the paper's
  ρ here is the p-value threshold).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np
from scipy import stats as sps


class Cdf:
    """An empirical CDF over a sample."""

    def __init__(self, samples: Iterable[float]) -> None:
        self.samples = np.sort(np.asarray(list(samples), dtype=float))
        if self.samples.size == 0:
            raise ValueError("CDF needs at least one sample")

    def __len__(self) -> int:
        return int(self.samples.size)

    def percentile(self, q: float) -> float:
        """Value at percentile ``q`` (0-100)."""
        return float(np.percentile(self.samples, q))

    @property
    def median(self) -> float:
        return self.percentile(50)

    @property
    def min(self) -> float:
        return float(self.samples[0])

    @property
    def max(self) -> float:
        return float(self.samples[-1])

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    def at(self, value: float) -> float:
        """Fraction of samples <= value (the y of the CDF plot)."""
        return float(np.searchsorted(self.samples, value, side="right")
                     / self.samples.size)

    def points(self, max_points: int = 200) -> list[tuple[float, float]]:
        """(value, cumulative fraction) pairs, decimated for plotting or
        tabular output."""
        n = self.samples.size
        step = max(1, n // max_points)
        pts = [(float(self.samples[i]), (i + 1) / n)
               for i in range(0, n, step)]
        if pts[-1][1] != 1.0:
            pts.append((float(self.samples[-1]), 1.0))
        return pts

    def summary_row(self, label: str, scale: float = 1.0,
                    unit: str = "") -> str:
        """One formatted row: label, p50/p90/p99/max."""
        return (f"{label:<28s} p50={self.percentile(50)/scale:>10.1f}{unit} "
                f"p90={self.percentile(90)/scale:>10.1f}{unit} "
                f"p99={self.percentile(99)/scale:>10.1f}{unit} "
                f"max={self.max/scale:>10.1f}{unit}")


def balance_stddevs(rounds: Sequence[dict[str, dict[int, float]]]) -> list[float]:
    """Figure 12's balance metric over a measurement campaign.

    ``rounds`` is a sequence of measurement rounds; each round maps a
    switch name to {uplink port: measured value}.  For every round and
    every switch with at least two uplinks, emit the standard deviation
    across that switch's uplinks ("uplinks were compared only to other
    uplinks on the same switch").
    """
    out: list[float] = []
    for round_ in rounds:
        for _switch, by_port in sorted(round_.items()):
            values = [v for _p, v in sorted(by_port.items())]
            if len(values) >= 2:
                out.append(float(np.std(values)))
    return out


@dataclass
class CorrelationResult:
    """Pairwise Spearman correlations over a set of named series."""

    names: list[str]
    rho: np.ndarray      # correlation coefficients, NaN on diagonal
    pvalue: np.ndarray   # two-sided p-values

    def significant(self, alpha: float = 0.1) -> dict[tuple[str, str], float]:
        """Significant pairs (p < alpha) → coefficient."""
        out: dict[tuple[str, str], float] = {}
        n = len(self.names)
        for i in range(n):
            for j in range(i + 1, n):
                if self.pvalue[i, j] < alpha:
                    out[(self.names[i], self.names[j])] = float(self.rho[i, j])
        return out

    def coefficient(self, a: str, b: str) -> float:
        i, j = self.names.index(a), self.names.index(b)
        return float(self.rho[i, j])

    def p_of(self, a: str, b: str) -> float:
        i, j = self.names.index(a), self.names.index(b)
        return float(self.pvalue[i, j])


def spearman_matrix(series: dict[str, Sequence[float]]) -> CorrelationResult:
    """Pairwise Spearman rank correlation of equally long series.

    Computed in one vectorised ``scipy.stats.spearmanr`` call over the
    sample matrix.  Degenerate (constant) series produce NaN
    coefficients with p=1, which downstream significance filters
    naturally ignore.
    """
    names = sorted(series)
    if len(names) < 2:
        raise ValueError("need at least two series")
    lengths = {len(series[n]) for n in names}
    if len(lengths) != 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
    n = len(names)
    matrix = np.column_stack([np.asarray(series[name], dtype=float)
                              for name in names])
    constant = np.all(matrix == matrix[0, :], axis=0)
    import warnings
    with warnings.catch_warnings():
        # Constant columns are legal input here (idle ports); they are
        # masked out below rather than warned about.
        warnings.simplefilter("ignore", sps.ConstantInputWarning)
        rho_full, pval_full = sps.spearmanr(matrix, axis=0)
    if n == 2:  # scipy returns scalars for exactly two columns
        rho_full = np.array([[1.0, rho_full], [rho_full, 1.0]])
        pval_full = np.array([[0.0, pval_full], [pval_full, 0.0]])
    rho = np.array(rho_full, dtype=float)
    pval = np.array(pval_full, dtype=float)
    np.fill_diagonal(rho, np.nan)
    np.fill_diagonal(pval, 1.0)
    # Degenerate series: scipy yields NaN rho; normalise their p to 1.
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            if constant[i] or constant[j] or math.isnan(rho[i, j]):
                rho[i, j] = np.nan
                pval[i, j] = 1.0
    return CorrelationResult(names=names, rho=rho, pvalue=pval)


def significant_fraction(result: CorrelationResult, alpha: float = 0.1) -> float:
    """Fraction of all port pairs whose correlation is significant —
    the "43% more of the port pairs" comparison of §8.4."""
    n = len(result.names)
    total = n * (n - 1) // 2
    if total == 0:
        return 0.0
    return len(result.significant(alpha)) / total
