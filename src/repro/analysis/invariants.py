"""Network-wide invariants over consistent snapshots.

§2.2 (question 4) argues that verifying global forwarding behaviour
needs consistent snapshots — "otherwise we can observe states that are
impossible."  This module turns that into a library: operators feed it
consistent snapshots of packet counts and it evaluates invariants that
only hold on legal cuts.

* :class:`LinkAudit` — per physical link, compare the sender's egress
  count (plus in-flight credits) against the receiver's ingress count.
  On a consistent cut the discrepancy is exactly the packets lost on or
  after the sender's count (wire loss, tail drops) plus those still in
  flight — i.e. **non-negative**.  A negative discrepancy means the
  receiver counted packets the sender never sent before the cut: the
  impossible state inconsistent measurements manufacture.
* :class:`LoopDetector` — across consecutive snapshots, traffic entering
  the fabric from hosts bounds how much transit (switch-to-switch)
  traffic can grow; transit growth far beyond the edge growth times the
  maximum path length is evidence of circulating packets (the
  forwarding-loop signature of ``examples/forwarding_loop_detection.py``,
  as an API).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Optional

from repro.core.snapshot import GlobalSnapshot
from repro.sim.network import Network
from repro.sim.switch import Direction, UnitId
from repro.topology.graph import NodeKind


@dataclass
class LinkReport:
    """Audit result for one direction of one physical link."""

    sender: UnitId           # egress unit at the sending switch
    receiver: UnitId         # ingress unit at the receiving switch
    sent: int                # sender's value (+ channel credits)
    received: int
    @property
    def discrepancy(self) -> int:
        """sent − received: in-flight + losses; negative is impossible
        on a consistent cut."""
        return self.sent - self.received


class LinkAudit:
    """Audits switch-to-switch links against one snapshot."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self._links: list[tuple[UnitId, UnitId]] = []
        for name in sorted(network.switches):
            for neighbor, port in sorted(network.port_map[name].items()):
                if network.topology.kind(neighbor) is not NodeKind.SWITCH:
                    continue
                peer_port = network.port_map[neighbor][name]
                self._links.append(
                    (UnitId(name, port, Direction.EGRESS),
                     UnitId(neighbor, peer_port, Direction.INGRESS)))

    def audit(self, snapshot: GlobalSnapshot) -> list[LinkReport]:
        """Per-link reports for every link both of whose units appear in
        the snapshot (partial deployments audit the enabled core)."""
        reports = []
        for sender, receiver in self._links:
            sent_rec = snapshot.records.get(sender)
            recv_rec = snapshot.records.get(receiver)
            if sent_rec is None or recv_rec is None:
                continue
            reports.append(LinkReport(
                sender=sender, receiver=receiver,
                sent=sent_rec.total_value, received=recv_rec.total_value))
        return reports

    def violations(self, snapshot: GlobalSnapshot) -> list[LinkReport]:
        """Links whose receiver counted more than the sender emitted —
        impossible on a consistent cut."""
        if not snapshot.consistent:
            raise ValueError(
                "link auditing requires a consistent snapshot; this one "
                "is marked inconsistent")
        return [r for r in self.audit(snapshot) if r.discrepancy < 0]

    def audit_completed(self, snapshots: Sequence[GlobalSnapshot]) -> "AuditSummary":
        """Audit every completed snapshot of a campaign (fault runs).

        Consistent + complete snapshots are held to the non-negativity
        invariant; snapshots the control planes *marked* inconsistent are
        exempt (the marking is the protocol being honest about them, not
        a bug) but counted, and incomplete snapshots are only counted.
        This is the verification half of fault injection: faults may
        stall or degrade snapshots, but every snapshot still reported as
        consistent must describe a possible network state.
        """
        summary = AuditSummary()
        for snapshot in snapshots:
            if not snapshot.complete:
                summary.skipped_incomplete += 1
                continue
            if not snapshot.consistent:
                summary.skipped_inconsistent += 1
                continue
            summary.snapshots_audited += 1
            for report in self.audit(snapshot):
                summary.links_checked += 1
                if report.discrepancy < 0:
                    summary.negative_discrepancies.append(
                        (snapshot.epoch, report))
        return summary


@dataclass
class AuditSummary:
    """Outcome of :meth:`LinkAudit.audit_completed` over a campaign."""

    snapshots_audited: int = 0
    links_checked: int = 0
    skipped_inconsistent: int = 0
    skipped_incomplete: int = 0
    negative_discrepancies: list[tuple[int, LinkReport]] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.negative_discrepancies is None:
            self.negative_discrepancies = []

    @property
    def ok(self) -> bool:
        """True iff no consistent cut showed an impossible state."""
        return not self.negative_discrepancies

    def __str__(self) -> str:
        verdict = ("OK" if self.ok
                   else f"{len(self.negative_discrepancies)} VIOLATIONS")
        return (f"audited {self.snapshots_audited} snapshots "
                f"({self.links_checked} link checks, "
                f"{self.skipped_inconsistent} flagged inconsistent, "
                f"{self.skipped_incomplete} incomplete) -> {verdict}")


@dataclass
class LoopVerdict:
    edge_growth: int
    transit_growth: int
    amplification: float
    loop_suspected: bool

    def __str__(self) -> str:
        verdict = "LOOP SUSPECTED" if self.loop_suspected else "normal"
        return (f"edge +{self.edge_growth}, transit +{self.transit_growth} "
                f"(x{self.amplification:.1f}) -> {verdict}")


class LoopDetector:
    """Detects circulating traffic from consecutive consistent snapshots.

    Every packet a host injects traverses at most ``max_path_hops``
    switch ingress units; if transit arrivals grow faster than
    ``edge growth x max_path_hops`` (plus slack), packets are revisiting
    switches — a forwarding loop.
    """

    def __init__(self, network: Network, max_path_hops: Optional[int] = None,
                 slack: float = 1.5) -> None:
        self.network = network
        if max_path_hops is None:
            # Hop bound from the topology: switch count is a safe cap
            # for any loop-free path.
            max_path_hops = max(2, len(network.switches))
        self.max_path_hops = max_path_hops
        self.slack = slack

    def _ingress_totals(self, snapshot: GlobalSnapshot) -> tuple[int, int]:
        edge = transit = 0
        for unit, record in snapshot.records.items():
            if unit.direction is not Direction.INGRESS:
                continue
            peer, kind = self.network.peer_of_port(unit.device, unit.port)
            if kind is NodeKind.HOST:
                edge += record.value
            else:
                transit += record.value
        return edge, transit

    def compare(self, before: GlobalSnapshot,
                after: GlobalSnapshot) -> LoopVerdict:
        if before.epoch >= after.epoch:
            raise ValueError("snapshots must be in epoch order")
        edge0, transit0 = self._ingress_totals(before)
        edge1, transit1 = self._ingress_totals(after)
        edge_growth = edge1 - edge0
        transit_growth = transit1 - transit0
        bound = max(edge_growth, 0) * self.max_path_hops * self.slack
        # A quiet network with growing transit is the clearest signature;
        # require some absolute growth so idle noise never triggers.
        suspected = transit_growth > max(bound, 10)
        amplification = (transit_growth / edge_growth
                         if edge_growth > 0 else float("inf")
                         if transit_growth > 0 else 0.0)
        return LoopVerdict(edge_growth=edge_growth,
                           transit_growth=transit_growth,
                           amplification=amplification,
                           loop_suspected=suspected)

    def scan(self, snapshots: Sequence[GlobalSnapshot]) -> list[LoopVerdict]:
        ordered = sorted(snapshots, key=lambda s: s.epoch)
        return [self.compare(a, b) for a, b in zip(ordered, ordered[1:])]
