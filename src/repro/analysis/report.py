"""Snapshot export, campaign time-series assembly, and trial-row tables.

Turns :class:`~repro.core.snapshot.GlobalSnapshot` objects into plain
rows/dicts (for JSON/CSV export or ad-hoc analysis), assembles
campaigns into per-unit time series — the input shape for the
correlation and balance analyses — and renders
:class:`~repro.runtime.result.TrialResult` batches as flat rows for the
CLI's suite summary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from collections.abc import Sequence
from typing import Optional

from repro.core.control_plane import UnitSnapshotRecord
from repro.core.snapshot import GlobalSnapshot, SnapshotStatus
from repro.runtime.result import TrialResult
from repro.sim.switch import Direction, UnitId


def snapshot_rows(snapshot: GlobalSnapshot) -> list[dict[str, object]]:
    """One flat dict per unit record (stable ordering)."""
    rows = []
    for unit, record in sorted(snapshot.records.items(),
                               key=lambda kv: (kv[0].device, kv[0].port,
                                               kv[0].direction.value)):
        rows.append({
            "epoch": snapshot.epoch,
            "device": unit.device,
            "port": unit.port,
            "direction": unit.direction.value,
            "value": record.value,
            "channel_state": record.channel_state,
            "total": record.total_value,
            "consistent": record.consistent,
            "captured_ns": record.captured_ns,
            "read_ns": record.read_ns,
        })
    return rows


def _unit_name(unit: UnitId) -> str:
    return f"{unit.device}:{unit.port}:{unit.direction.value}"


def _parse_unit(name: str) -> UnitId:
    device, port, direction = name.rsplit(":", 2)
    return UnitId(device, int(port), Direction(direction))


def epoch_record(snapshot: GlobalSnapshot) -> dict[str, object]:
    """*The* JSON-stable epoch-record shape.

    Every exporter — batch reports, :func:`snapshot_to_json`, the
    service-mode delta store and its query API — serializes epochs
    through this one function, so ``exclusion_reasons`` and per-unit
    records round-trip identically everywhere.  The document is pure
    JSON types with deterministic ordering, and
    :func:`epoch_from_record` inverts it exactly:
    ``epoch_record(epoch_from_record(doc)) == doc``.
    """
    return {
        "epoch": snapshot.epoch,
        "status": snapshot.status.value,
        "retries": snapshot.retries,
        "consistent": snapshot.consistent,
        "requested_wall_ns": snapshot.requested_wall_ns,
        "capture_spread_ns": snapshot.capture_spread_ns,
        "excluded_devices": sorted(snapshot.excluded_devices),
        "exclusion_reasons": {d: snapshot.exclusion_reasons[d]
                              for d in sorted(snapshot.exclusion_reasons)},
        "missing_units": sorted(_unit_name(u)
                                for u in snapshot.missing_units),
        "records": snapshot_rows(snapshot),
    }


def epoch_from_record(doc: dict[str, object]) -> GlobalSnapshot:
    """Rebuild a :class:`GlobalSnapshot` from its :func:`epoch_record`
    document (the derived fields — ``consistent``,
    ``capture_spread_ns`` — are recomputed from the records, not
    trusted from the document)."""
    epoch = int(doc["epoch"])  # type: ignore[arg-type]
    records: dict[UnitId, UnitSnapshotRecord] = {}
    for row in doc["records"]:  # type: ignore[union-attr]
        unit = UnitId(row["device"], int(row["port"]),
                      Direction(row["direction"]))
        records[unit] = UnitSnapshotRecord(
            unit=unit, epoch=epoch, value=int(row["value"]),
            channel_state=(None if row["channel_state"] is None
                           else int(row["channel_state"])),
            consistent=bool(row["consistent"]),
            captured_ns=int(row["captured_ns"]),
            read_ns=int(row["read_ns"]))
    missing = {_parse_unit(name)
               for name in doc["missing_units"]}  # type: ignore[union-attr]
    return GlobalSnapshot(
        epoch=epoch,
        requested_wall_ns=int(doc["requested_wall_ns"]),  # type: ignore[arg-type]
        expected_units=set(records) | missing,
        records=records,
        excluded_devices=set(doc["excluded_devices"]),  # type: ignore[arg-type]
        exclusion_reasons=dict(doc["exclusion_reasons"]),  # type: ignore[arg-type]
        status=SnapshotStatus(doc["status"]),
        retries=int(doc["retries"]))  # type: ignore[arg-type]


def snapshot_to_json(snapshot: GlobalSnapshot, indent: Optional[int] = None) -> str:
    """A self-describing JSON document for one snapshot."""
    return json.dumps(epoch_record(snapshot), indent=indent)


@dataclass
class CampaignSeries:
    """Per-unit time series across a snapshot campaign.

    Only units present in *every* snapshot are included, so all series
    have equal length (ragged series break rank-correlation analyses).
    """

    epochs: list[int]
    series: dict[UnitId, list[int]]

    @classmethod
    def from_snapshots(cls, snapshots: Sequence[GlobalSnapshot],
                       use_total: bool = False) -> "CampaignSeries":
        snaps = [s for s in snapshots if s.records]
        if not snaps:
            raise ValueError("no snapshots with records")
        common = set(snaps[0].records)
        for snap in snaps[1:]:
            common &= set(snap.records)
        if not common:
            raise ValueError("snapshots share no units")
        series: dict[UnitId, list[int]] = {u: [] for u in common}
        for snap in snaps:
            for unit in common:
                record = snap.records[unit]
                series[unit].append(record.total_value if use_total
                                    else record.value)
        return cls(epochs=[s.epoch for s in snaps], series=series)

    def __len__(self) -> int:
        return len(self.epochs)

    def units(self) -> list[UnitId]:
        return sorted(self.series, key=lambda u: (u.device, u.port,
                                                  u.direction.value))

    def named(self, direction: Optional[Direction] = None) -> dict[str, list[float]]:
        """Series keyed by "device:port" strings (the spearman_matrix
        input shape), optionally filtered to one direction."""
        out: dict[str, list[float]] = {}
        for unit in self.units():
            if direction is not None and unit.direction is not direction:
                continue
            out[f"{unit.device}:{unit.port}"] = [float(v)
                                                 for v in self.series[unit]]
        return out

    def deltas(self) -> "CampaignSeries":
        """Per-interval differences (cumulative counters → rates)."""
        if len(self.epochs) < 2:
            raise ValueError("need at least two snapshots for deltas")
        return CampaignSeries(
            epochs=self.epochs[1:],
            series={u: [b - a for a, b in zip(vals, vals[1:])]
                    for u, vals in self.series.items()})


# ----------------------------------------------------------------------
# Trial-result rows (the CLI's suite summary)
# ----------------------------------------------------------------------

def trial_rows(results: Sequence[TrialResult]) -> list[dict[str, object]]:
    """One flat dict per trial, suitable for JSON/CSV export."""
    return [{
        "label": r.label or r.kind,
        "kind": r.kind,
        "seed": r.seed,
        "fingerprint": r.fingerprint,
        "params": dict(r.params),
    } for r in results]


def render_trial_rows(results: Sequence[TrialResult]) -> str:
    """A fixed-width table of executed trials (label, kind, id)."""
    rows = trial_rows(results)
    if not rows:
        return "(no trials)"
    label_w = max(len(str(row["label"])) for row in rows)
    kind_w = max(len(str(row["kind"])) for row in rows)
    lines = [f"{'trial':<{label_w}}  {'kind':<{kind_w}}  id"]
    for row in rows:
        lines.append(f"{row['label']:<{label_w}}  {row['kind']:<{kind_w}}  "
                     f"{str(row['fingerprint'])[:12]}")
    return "\n".join(lines)
