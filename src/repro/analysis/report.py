"""Snapshot export, campaign time-series assembly, and trial-row tables.

Turns :class:`~repro.core.snapshot.GlobalSnapshot` objects into plain
rows/dicts (for JSON/CSV export or ad-hoc analysis), assembles
campaigns into per-unit time series — the input shape for the
correlation and balance analyses — and renders
:class:`~repro.runtime.result.TrialResult` batches as flat rows for the
CLI's suite summary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from collections.abc import Sequence
from typing import Optional

from repro.core.snapshot import GlobalSnapshot
from repro.runtime.result import TrialResult
from repro.sim.switch import Direction, UnitId


def snapshot_rows(snapshot: GlobalSnapshot) -> list[dict[str, object]]:
    """One flat dict per unit record (stable ordering)."""
    rows = []
    for unit, record in sorted(snapshot.records.items(),
                               key=lambda kv: (kv[0].device, kv[0].port,
                                               kv[0].direction.value)):
        rows.append({
            "epoch": snapshot.epoch,
            "device": unit.device,
            "port": unit.port,
            "direction": unit.direction.value,
            "value": record.value,
            "channel_state": record.channel_state,
            "total": record.total_value,
            "consistent": record.consistent,
            "captured_ns": record.captured_ns,
        })
    return rows


def snapshot_to_json(snapshot: GlobalSnapshot, indent: Optional[int] = None) -> str:
    """A self-describing JSON document for one snapshot."""
    doc = {
        "epoch": snapshot.epoch,
        "status": snapshot.status.value,
        "consistent": snapshot.consistent,
        "requested_wall_ns": snapshot.requested_wall_ns,
        "capture_spread_ns": snapshot.capture_spread_ns,
        "excluded_devices": sorted(snapshot.excluded_devices),
        "records": snapshot_rows(snapshot),
    }
    return json.dumps(doc, indent=indent)


@dataclass
class CampaignSeries:
    """Per-unit time series across a snapshot campaign.

    Only units present in *every* snapshot are included, so all series
    have equal length (ragged series break rank-correlation analyses).
    """

    epochs: list[int]
    series: dict[UnitId, list[int]]

    @classmethod
    def from_snapshots(cls, snapshots: Sequence[GlobalSnapshot],
                       use_total: bool = False) -> "CampaignSeries":
        snaps = [s for s in snapshots if s.records]
        if not snaps:
            raise ValueError("no snapshots with records")
        common = set(snaps[0].records)
        for snap in snaps[1:]:
            common &= set(snap.records)
        if not common:
            raise ValueError("snapshots share no units")
        series: dict[UnitId, list[int]] = {u: [] for u in common}
        for snap in snaps:
            for unit in common:
                record = snap.records[unit]
                series[unit].append(record.total_value if use_total
                                    else record.value)
        return cls(epochs=[s.epoch for s in snaps], series=series)

    def __len__(self) -> int:
        return len(self.epochs)

    def units(self) -> list[UnitId]:
        return sorted(self.series, key=lambda u: (u.device, u.port,
                                                  u.direction.value))

    def named(self, direction: Optional[Direction] = None) -> dict[str, list[float]]:
        """Series keyed by "device:port" strings (the spearman_matrix
        input shape), optionally filtered to one direction."""
        out: dict[str, list[float]] = {}
        for unit in self.units():
            if direction is not None and unit.direction is not direction:
                continue
            out[f"{unit.device}:{unit.port}"] = [float(v)
                                                 for v in self.series[unit]]
        return out

    def deltas(self) -> "CampaignSeries":
        """Per-interval differences (cumulative counters → rates)."""
        if len(self.epochs) < 2:
            raise ValueError("need at least two snapshots for deltas")
        return CampaignSeries(
            epochs=self.epochs[1:],
            series={u: [b - a for a, b in zip(vals, vals[1:])]
                    for u, vals in self.series.items()})


# ----------------------------------------------------------------------
# Trial-result rows (the CLI's suite summary)
# ----------------------------------------------------------------------

def trial_rows(results: Sequence[TrialResult]) -> list[dict[str, object]]:
    """One flat dict per trial, suitable for JSON/CSV export."""
    return [{
        "label": r.label or r.kind,
        "kind": r.kind,
        "seed": r.seed,
        "fingerprint": r.fingerprint,
        "params": dict(r.params),
    } for r in results]


def render_trial_rows(results: Sequence[TrialResult]) -> str:
    """A fixed-width table of executed trials (label, kind, id)."""
    rows = trial_rows(results)
    if not rows:
        return "(no trials)"
    label_w = max(len(str(row["label"])) for row in rows)
    kind_w = max(len(str(row["kind"])) for row in rows)
    lines = [f"{'trial':<{label_w}}  {'kind':<{kind_w}}  id"]
    for row in rows:
        lines.append(f"{row['label']:<{label_w}}  {row['kind']:<{kind_w}}  "
                     f"{str(row['fingerprint'])[:12]}")
    return "\n".join(lines)
