"""Ground-truth causal-consistency checking.

The paper proves (§4.2) that the snapshot cut is causally consistent:
for every pre-snapshot receive, the matching send is pre-snapshot.  For
accumulator metrics this implies a *conservation law* we can check
mechanically against the simulator's ground-truth trace:

With channel state (packet counts), for every unit ``u`` and consistent
epoch ``i``::

    value_u(i) + channel_u(i)  ==  #{DATA packets arriving at u carrying
                                     an epoch < i}

because the right-hand side is exactly the set of packets *sent*
pre-``i`` by upstream units: each is either processed before ``u``'s
local capture (counted in ``value``) or in flight across the cut
(credited to ``channel``).  Without channel state, the local cut
placement is checked instead::

    value_u(i)  ==  #{DATA packets processed at u while u's ID < i}

Any snapshot the control plane reports as consistent must satisfy these
exactly; the checker raises :class:`ConsistencyViolation` otherwise.
Snapshots marked inconsistent are expected to violate the first law —
the checker can confirm that the marking is not overly optimistic.

The checker consumes :class:`~repro.sim.switch.TraceEvent` records
(enable them with ``NetworkConfig(enable_tracing=True)``) and unwraps
the wrapped on-wire IDs by tracking each unit's monotone epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from repro.core.ids import IdSpace
from repro.core.snapshot import GlobalSnapshot
from repro.sim.switch import TraceEvent, UnitId


class ConsistencyViolation(AssertionError):
    """A snapshot declared consistent fails the conservation law."""


@dataclass
class ConsistencyAudit:
    """Outcome of :meth:`ConsistencyChecker.audit` over a campaign."""

    snapshots_checked: int = 0
    incomplete: int = 0
    records_checked: int = 0
    records_flagged: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff no consistent-claimed record was silently wrong."""
        return not self.violations

    def __str__(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return (f"checked {self.snapshots_checked} snapshots "
                f"({self.records_checked} records, "
                f"{self.records_flagged} flagged inconsistent, "
                f"{self.incomplete} incomplete) -> {verdict}")


@dataclass
class _UnitHistory:
    """Per-unit arrival history in unwrapped epochs."""

    #: Unwrapped carried epoch of each DATA arrival, in time order.
    carried: list[int] = field(default_factory=list)
    #: Unwrapped unit epoch after processing each DATA arrival.
    after: list[int] = field(default_factory=list)
    #: Contribution of each arrival (1 for packet counts, size for bytes).
    weight: list[int] = field(default_factory=list)
    #: Running unwrapped epoch (for unwrap references).
    current_epoch: int = 0


class ConsistencyChecker:
    """Replays trace events and validates snapshot cuts."""

    def __init__(self, id_space: IdSpace, metric: str = "packet_count") -> None:
        if metric not in ("packet_count", "byte_count"):
            raise ValueError(
                "conservation checking only applies to accumulator metrics")
        self.ids = id_space
        self.metric = metric
        self._history: dict[UnitId, _UnitHistory] = {}

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, events: Iterable[TraceEvent]) -> None:
        """Add trace events (must be fed in simulation-time order)."""
        for event in events:
            history = self._history.setdefault(event.unit, _UnitHistory())
            after = self.ids.unwrap_onto(event.unit_sid_after,
                                         history.current_epoch)
            after = max(after, history.current_epoch)  # epochs never regress
            history.current_epoch = after
            if not event.is_data:
                continue
            carried = self.ids.unwrap_onto(event.carried_sid, after)
            carried = min(carried, after)  # a send epoch never exceeds ours
            history.carried.append(carried)
            history.after.append(after)
            history.weight.append(
                event.size_bytes if self.metric == "byte_count" else 1)

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------
    def expected_with_channel_state(self, unit: UnitId, epoch: int) -> int:
        """Ground-truth value+channel total for ``epoch`` at ``unit``."""
        history = self._history.get(unit)
        if history is None:
            return 0
        return sum(w for c, w in zip(history.carried, history.weight)
                   if c < epoch)

    def expected_without_channel_state(self, unit: UnitId, epoch: int) -> int:
        """Ground-truth local value for ``epoch`` at ``unit``."""
        history = self._history.get(unit)
        if history is None:
            return 0
        return sum(w for a, w in zip(history.after, history.weight)
                   if a < epoch)

    def violations_of(self, snapshot: GlobalSnapshot,
                      channel_state: bool) -> list[str]:
        """Conservation-law violations of one snapshot, as messages.

        Only consistent records are held to the conservation law;
        records the control plane flagged inconsistent are exempt (that
        is the flag's purpose).  Non-raising so fault experiments can
        audit whole campaigns and report, not abort.
        """
        problems: list[str] = []
        for unit, record in sorted(snapshot.records.items(), key=lambda kv: str(kv[0])):
            if not record.consistent:
                continue
            if channel_state:
                expected = self.expected_with_channel_state(unit, record.epoch)
                actual = record.value + (record.channel_state or 0)
                law = "value+channel == pre-epoch sends"
            else:
                expected = self.expected_without_channel_state(unit, record.epoch)
                actual = record.value
                law = "value == pre-capture arrivals"
            if actual != expected:
                problems.append(
                    f"epoch {record.epoch} at {unit}: {law} violated "
                    f"(snapshot says {actual}, ground truth {expected})")
        return problems

    def check_snapshot(self, snapshot: GlobalSnapshot,
                       channel_state: bool) -> None:
        """Validate one complete snapshot; raises on violation."""
        problems = self.violations_of(snapshot, channel_state)
        if problems:
            raise ConsistencyViolation(problems[0])

    def check_all(self, snapshots: Sequence[GlobalSnapshot],
                  channel_state: bool) -> int:
        """Check a batch; returns the number of records validated."""
        checked = 0
        for snapshot in snapshots:
            self.check_snapshot(snapshot, channel_state)
            checked += sum(1 for r in snapshot.records.values() if r.consistent)
        return checked

    def audit(self, snapshots: Sequence[GlobalSnapshot],
              channel_state: bool) -> "ConsistencyAudit":
        """Audit a whole campaign (the fault-experiment verification pass).

        Complete snapshots are checked record-by-record against the
        ground-truth conservation law; violations are collected, never
        raised.  The report distinguishes records *flagged* inconsistent
        (protocol honesty — expected under faults) from records claimed
        consistent yet wrong (a real bug — never acceptable).
        """
        report = ConsistencyAudit()
        for snapshot in snapshots:
            if not snapshot.complete:
                report.incomplete += 1
                continue
            report.snapshots_checked += 1
            flagged = sum(1 for r in snapshot.records.values()
                          if not r.consistent)
            report.records_flagged += flagged
            report.records_checked += len(snapshot.records) - flagged
            report.violations.extend(
                self.violations_of(snapshot, channel_state))
        return report

    def marking_precision(self, snapshots: Sequence[GlobalSnapshot]) -> dict[str, int]:
        """How often inconsistent-marked records actually violate the law
        (with channel state).  Conservative marking means some marked
        records are in fact fine; this quantifies the over-marking."""
        stats = {"marked": 0, "actually_wrong": 0}
        for snapshot in snapshots:
            for unit, record in snapshot.records.items():
                if record.consistent:
                    continue
                stats["marked"] += 1
                expected = self.expected_with_channel_state(unit, record.epoch)
                actual = record.value + (record.channel_state or 0)
                if actual != expected:
                    stats["actually_wrong"] += 1
        return stats
