"""Statistics and verification tools for snapshot measurements.

* :mod:`~repro.analysis.stats` — CDFs, balance metrics, and the Spearman
  correlation analysis of Figure 13;
* :mod:`~repro.analysis.consistency` — the ground-truth causal-consistency
  checker: replays data-plane trace events and verifies that every
  snapshot the system declared consistent is in fact a closed cut with
  conserved flow counts.
"""

from repro.analysis.stats import (
    Cdf,
    spearman_matrix,
    significant_fraction,
    balance_stddevs,
)
from repro.analysis.consistency import (
    ConsistencyAudit,
    ConsistencyChecker,
    ConsistencyViolation,
)
from repro.analysis.report import (
    CampaignSeries,
    epoch_from_record,
    epoch_record,
    snapshot_rows,
    snapshot_to_json,
)
from repro.analysis.invariants import (
    AuditSummary,
    LinkAudit,
    LinkReport,
    LoopDetector,
    LoopVerdict,
)

__all__ = [
    "AuditSummary",
    "LinkAudit",
    "LinkReport",
    "LoopDetector",
    "LoopVerdict",
    "CampaignSeries",
    "epoch_from_record",
    "epoch_record",
    "snapshot_rows",
    "snapshot_to_json",
    "Cdf",
    "spearman_matrix",
    "significant_fraction",
    "balance_stddevs",
    "ConsistencyAudit",
    "ConsistencyChecker",
    "ConsistencyViolation",
]
