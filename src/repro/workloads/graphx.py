"""GraphX-PageRank-shaped traffic: bulk-synchronous supersteps.

The paper runs Spark GraphX's synthetic PageRank benchmark (100 000
vertices, 5 workers) (§8).  Pregel-style PageRank is bulk-synchronous:
each iteration, every worker exchanges rank updates with every other
worker in a near-simultaneous wave, then the cluster quiets until the
next iteration.  Three properties of this traffic carry the paper's
Figure 13 analysis, and all three are modelled explicitly:

* **Synchronized intensity.**  Within an exchange wave, the *rate* at
  which rank updates flow fluctuates at sub-millisecond scale — vertex
  partitions complete in sub-waves, serialization stalls hit all streams
  together — and these fluctuations are **common across workers**
  (they are phases of one distributed computation).  We model this with
  a shared piecewise-constant intensity process ``I(t)`` (resampled
  every ``modulation_period_ns``) that scales every sender's packet gap.
  Simultaneous measurements of two ports see the same ``I(t)`` and are
  therefore positively correlated; measurements a few hundred µs apart
  see independent draws — exactly the signal snapshots preserve and
  polling's read smear destroys.
* **A silent master.**  The driver (``server0`` by default) coordinates
  with tiny control RPCs but moves no bulk data, so its access port must
  show no significant rate correlation with any worker port (Figure 13's
  first ground truth).
* **Background chatter.**  Executor heartbeats and block-manager ACKs
  trickle constantly, keeping the rate-EWMA registers time-sensitive:
  an idle-phase read shows the chatter floor rather than a frozen burst
  value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import MS, US
from repro.workloads.base import Workload, WorkloadConfig


@dataclass
class GraphXConfig(WorkloadConfig):
    #: The driver host (excluded from bulk exchanges).
    master: str = "server0"
    #: Iteration period of the bulk-synchronous loop.
    iteration_ns: int = 10 * MS
    #: Straggler jitter on each worker's wave start.
    max_jitter_ns: int = 300_000
    #: Rank-update packets per worker->worker stream per iteration.
    burst_packets: int = 180
    #: Base packet gap within a stream (scaled by the intensity process);
    #: 40 µs x 180 packets ≈ a 7 ms exchange window per 10 ms iteration.
    burst_gap_ns: int = 40 * US
    #: The shared intensity process: resample period and lognormal sigma.
    #: All senders share each draw, so port rates co-move within a wave.
    modulation_period_ns: int = 300 * US
    intensity_sigma: float = 0.6
    size_bytes: int = 1200
    #: Size of the master's control messages (task scheduling RPCs).
    control_size_bytes: int = 200
    #: Background chatter rate per host pair (packets/second): shuffle
    #: ACKs, block-manager heartbeats, executor liveness.
    chatter_pps: float = 300.0
    chatter_size_bytes: int = 150


class GraphXPageRankWorkload(Workload):
    """Synchronized superstep traffic of a Pregel-style PageRank."""

    def __init__(self, network, config: Optional[GraphXConfig] = None) -> None:
        super().__init__(network, config or GraphXConfig())
        self.config: GraphXConfig
        self.iterations_run = 0
        self._intensity = 1.0

    @property
    def workers(self) -> list[str]:
        return [h for h in self.hosts if h != self.config.master]

    def _begin(self) -> None:
        if self.config.master not in self.network.hosts:
            raise ValueError(f"master {self.config.master!r} not in network")
        if self.config.chatter_pps > 0:
            mean_gap = 1e9 / self.config.chatter_pps
            for src in self.hosts:
                for dst in self.hosts:
                    if src != dst:
                        self.sim.schedule(self.exp_delay(mean_gap),
                                          self._chatter, src, dst, mean_gap)
        if self.config.intensity_sigma > 0:
            self._modulate()
        self._iteration()

    # ------------------------------------------------------------------
    # Background processes
    # ------------------------------------------------------------------
    def _chatter(self, src: str, dst: str, mean_gap: float) -> None:
        if not self.active:
            return
        self.emit(src, dst, sport=self.next_sport(), dport=7078,
                  size_bytes=self.config.chatter_size_bytes)
        self.sim.schedule(self.exp_delay(mean_gap), self._chatter,
                          src, dst, mean_gap)

    def _modulate(self) -> None:
        """Resample the shared intensity factor (one draw for everyone)."""
        if not self.active:
            return
        self._intensity = self.rng.lognormvariate(0.0,
                                                  self.config.intensity_sigma)
        self.sim.schedule(self.config.modulation_period_ns, self._modulate)

    def _current_gap_ns(self) -> int:
        return max(1, int(self.config.burst_gap_ns * self._intensity))

    # ------------------------------------------------------------------
    # Supersteps
    # ------------------------------------------------------------------
    def _iteration(self) -> None:
        if not self.active:
            return
        self.iterations_run += 1
        workers = self.workers
        for src in workers:
            jitter = self.rng.randint(0, self.config.max_jitter_ns)
            self.sim.schedule(jitter, self._worker_wave, src, workers)
        # The master sends only small control messages, one per worker.
        for dst in workers:
            self.emit(self.config.master, dst, sport=self.next_sport(),
                      dport=7077, size_bytes=self.config.control_size_bytes)
        self.sim.schedule(self.config.iteration_ns, self._iteration)

    def _worker_wave(self, src: str, workers: list[str]) -> None:
        if not self.active:
            return
        for dst in workers:
            if dst == src:
                continue
            self._stream(src, dst, self.next_sport(),
                         self.config.burst_packets, 0)

    def _stream(self, src: str, dst: str, sport: int, remaining: int,
                seq: int) -> None:
        """Emit one rank-update stream, paced by the shared intensity."""
        if not self.active or remaining <= 0:
            return
        self.emit(src, dst, sport=sport, dport=7337,
                  size_bytes=self.config.size_bytes, seq=seq)
        self.sim.schedule(self._current_gap_ns(), self._stream,
                          src, dst, sport, remaining - 1, seq + 1)
