"""Generic traffic generators: Poisson and on/off (bursty).

These are the building blocks for tests and for custom measurement
campaigns; the application-shaped workloads in this package compose the
same primitives with application-specific structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import MS, US
from repro.workloads.base import Workload, WorkloadConfig


@dataclass
class PoissonConfig(WorkloadConfig):
    """Every (src, dst) pair exchanges Poisson traffic."""

    #: Mean per-pair packet rate, packets/second.
    rate_pps: float = 10_000.0
    size_bytes: int = 1000
    #: Explicit pairs; None means all-to-all among participating hosts.
    pairs: Optional[list[tuple[str, str]]] = None
    #: Draw a fresh source port for every packet, so the ECMP hash
    #: spreads each pair's traffic over all equal-cost members (models
    #: connection churn; without it each pair pins one member).
    sport_churn: bool = False


class PoissonWorkload(Workload):
    """Independent Poisson packet processes per host pair.

    Memoryless and smooth — the "null" traffic texture against which the
    bursty workloads are contrasted.
    """

    def __init__(self, network, config: Optional[PoissonConfig] = None) -> None:
        super().__init__(network, config or PoissonConfig())
        self.config: PoissonConfig

    def _pairs(self) -> list[tuple[str, str]]:
        if self.config.pairs is not None:
            return list(self.config.pairs)
        hosts = self.hosts
        return [(a, b) for a in hosts for b in hosts if a != b]

    def _begin(self) -> None:
        mean_gap = 1e9 / self.config.rate_pps
        for src, dst in self._pairs():
            sport = self.next_sport()
            self.sim.schedule(self.exp_delay(mean_gap), self._tick,
                              src, dst, sport, mean_gap)

    def _tick(self, src: str, dst: str, sport: int, mean_gap: float) -> None:
        if not self.active:
            return
        if self.config.sport_churn:
            sport = self.next_sport()
        self.emit(src, dst, sport=sport, dport=9000,
                  size_bytes=self.config.size_bytes)
        self.sim.schedule(self.exp_delay(mean_gap), self._tick,
                          src, dst, sport, mean_gap)


@dataclass
class OnOffConfig(WorkloadConfig):
    """Bursty on/off traffic: exponential on and off periods."""

    mean_on_ns: int = 1 * MS
    mean_off_ns: int = 4 * MS
    #: Packet gap while "on" (burst rate).
    on_gap_ns: int = 10 * US
    size_bytes: int = 1500
    pairs: Optional[list[tuple[str, str]]] = None


class OnOffWorkload(Workload):
    """Exponential on/off bursts per pair — microburst-like traffic.

    Bursts shorter than the polling interval are exactly the regime where
    "even small amounts of unattended asynchronicity can lead to large
    inaccuracies in measurement" (§2.1).
    """

    def __init__(self, network, config: Optional[OnOffConfig] = None) -> None:
        super().__init__(network, config or OnOffConfig())
        self.config: OnOffConfig

    def _pairs(self) -> list[tuple[str, str]]:
        if self.config.pairs is not None:
            return list(self.config.pairs)
        hosts = self.hosts
        return [(a, b) for a in hosts for b in hosts if a != b]

    def _begin(self) -> None:
        for src, dst in self._pairs():
            self.sim.schedule(self.exp_delay(self.config.mean_off_ns),
                              self._start_burst, src, dst)

    def _start_burst(self, src: str, dst: str) -> None:
        if not self.active:
            return
        duration = self.exp_delay(self.config.mean_on_ns)
        num = max(1, duration // max(self.config.on_gap_ns, 1))
        self.emit_burst(src, dst, sport=self.next_sport(), dport=9001,
                        num_packets=num, size_bytes=self.config.size_bytes,
                        gap_ns=self.config.on_gap_ns)
        self.sim.schedule(duration + self.exp_delay(self.config.mean_off_ns),
                          self._start_burst, src, dst)
