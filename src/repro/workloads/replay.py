"""Trace-driven traffic replay.

The paper measures live applications; users reproducing its methodology
on their own networks usually have *packet traces* instead.
:class:`ReplayWorkload` replays a list of :class:`TraceEntry` records
(timestamp, src, dst, size, ports, class) through the simulated network,
preserving emission times exactly — so a measurement campaign can be run
repeatedly, with different instrumentation, over the identical offered
load.

Traces round-trip through a simple CSV format (one record per line:
``time_ns,src,dst,size_bytes,sport,dport,cos``) for interoperability
with external tooling.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterable, Sequence
from typing import Optional, Union

from repro.sim.network import Network
from repro.sim.packet import FlowKey, Packet
from repro.workloads.base import Workload, WorkloadConfig


@dataclass(frozen=True)
class TraceEntry:
    """One packet emission."""

    time_ns: int
    src: str
    dst: str
    size_bytes: int = 1500
    sport: int = 10_000
    dport: int = 80
    cos: int = 0

    def to_row(self) -> list[str]:
        return [str(self.time_ns), self.src, self.dst,
                str(self.size_bytes), str(self.sport), str(self.dport),
                str(self.cos)]

    @classmethod
    def from_row(cls, row: Sequence[str]) -> "TraceEntry":
        if len(row) != 7:
            raise ValueError(f"expected 7 fields, got {len(row)}: {row!r}")
        return cls(time_ns=int(row[0]), src=row[1], dst=row[2],
                   size_bytes=int(row[3]), sport=int(row[4]),
                   dport=int(row[5]), cos=int(row[6]))


def save_trace(entries: Iterable[TraceEntry],
               path: Union[str, Path]) -> int:
    """Write entries to CSV; returns the count written."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        for entry in entries:
            writer.writerow(entry.to_row())
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> list[TraceEntry]:
    """Load a CSV trace, validating ordering (replay needs sorted input)."""
    entries: list[TraceEntry] = []
    with open(path, newline="") as handle:
        for line_number, row in enumerate(csv.reader(handle), start=1):
            if not row:
                continue
            try:
                entries.append(TraceEntry.from_row(row))
            except (ValueError, IndexError) as exc:
                raise ValueError(
                    f"{path}:{line_number}: bad record: {exc}") from exc
    if any(b.time_ns < a.time_ns for a, b in zip(entries, entries[1:])):
        entries.sort(key=lambda e: e.time_ns)
    return entries


class ReplayWorkload(Workload):
    """Replays a trace verbatim through the network.

    Emission honours the workload's ``start_ns``/``stop_ns`` window:
    trace timestamps are relative to ``start_ns`` and entries landing
    past ``stop_ns`` are skipped (counted in :attr:`skipped`).
    """

    def __init__(self, network: Network, entries: Sequence[TraceEntry],
                 config: Optional[WorkloadConfig] = None) -> None:
        super().__init__(network, config)
        self.entries = sorted(entries, key=lambda e: e.time_ns)
        self.skipped = 0
        unknown = ({e.src for e in self.entries} |
                   {e.dst for e in self.entries}) - set(network.hosts)
        if unknown:
            raise ValueError(f"trace references unknown hosts: "
                             f"{sorted(unknown)}")

    def _begin(self) -> None:
        base = self.sim.now
        for entry in self.entries:
            at = base + entry.time_ns
            if at >= self.config.stop_ns:
                self.skipped += 1
                continue
            self.sim.schedule_at(at, self._emit_entry, entry)

    def _emit_entry(self, entry: TraceEntry) -> None:
        if not self.active:
            self.skipped += 1
            return
        host = self.network.host(entry.src)
        flow = FlowKey(entry.src, entry.dst, entry.sport, entry.dport)
        host.send_packet(Packet(flow=flow, size_bytes=entry.size_bytes,
                                cos=entry.cos))
        self.packets_emitted += 1


def record_trace(workload: Workload, network: Network,
                 until_ns: int) -> list[TraceEntry]:
    """Run ``workload`` and capture its emissions as a replayable trace.

    Hooks the workload's emit path, runs the simulation to ``until_ns``,
    and returns the observed entries — a convenient way to freeze a
    stochastic workload into a deterministic trace.
    """
    captured: list[TraceEntry] = []
    original_emit = workload.emit

    def capturing_emit(src: str, dst: str, **kwargs) -> None:
        original_emit(src, dst, **kwargs)
        captured.append(TraceEntry(
            time_ns=network.sim.now, src=src, dst=dst,
            size_bytes=kwargs.get("size_bytes", 1500),
            sport=kwargs.get("sport", 10_000),
            dport=kwargs.get("dport", 80)))

    workload.emit = capturing_emit  # type: ignore[method-assign]
    try:
        workload.start()
        network.run(until=until_ns)
    finally:
        workload.emit = original_emit  # type: ignore[method-assign]
    return captured
