"""memcache-shaped traffic: closed-loop multi-get fan-out.

The paper runs memcached under mc-crusher's 50-key multi-get load (§8).
Each client request fans out a multi-get; the addressed servers answer
with small values immediately.  The resulting traffic is:

* **small packets** — requests of ~100 B, responses of a few hundred
  bytes;
* **smooth and dense** — the closed loop keeps a steady request stream,
  so port loads are very even and vary only at microsecond scale
  (Figure 12c's x-axis is µs where Hadoop's is ms);
* **fan-in** — many servers answer one client (mild incast).

The client rotates multi-gets across key ranges spread over the server
pool; each request/response pair is a distinct 5-tuple so the ECMP hash
sees high flow diversity (which is why ECMP balances memcache almost as
well as flowlets in Figure 12c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import US
from repro.workloads.base import Workload, WorkloadConfig


@dataclass
class MemcacheConfig(WorkloadConfig):
    #: Hosts acting as clients; remaining participants are servers.
    clients: Optional[list[str]] = None
    #: Keys per multi-get (mc-crusher's default workload uses 50).
    keys_per_multiget: int = 50
    #: Mean gap between multi-gets per client (closed-ish loop).
    mean_request_gap_ns: int = 40 * US
    request_size_bytes: int = 120
    value_size_bytes: int = 400
    #: Server-side lookup time before the response leaves.
    server_think_ns: int = 2 * US


class MemcacheWorkload(Workload):
    """Multi-get request/response traffic."""

    def __init__(self, network, config: Optional[MemcacheConfig] = None) -> None:
        super().__init__(network, config or MemcacheConfig())
        self.config: MemcacheConfig
        self.requests_sent = 0

    @property
    def clients(self) -> list[str]:
        if self.config.clients is not None:
            return list(self.config.clients)
        return self.hosts[:1]  # first host drives the load by default

    @property
    def servers(self) -> list[str]:
        clients = set(self.clients)
        return [h for h in self.hosts if h not in clients]

    def _begin(self) -> None:
        servers = self.servers
        if not servers:
            raise ValueError("memcache workload needs at least one server")
        for client in self.clients:
            self.sim.schedule(self.exp_delay(self.config.mean_request_gap_ns),
                              self._multiget, client)

    def _multiget(self, client: str) -> None:
        if not self.active:
            return
        self.requests_sent += 1
        servers = self.servers
        # Keys hash uniformly over the pool: each server owns a share of
        # the multi-get, answering with one response packet per few keys.
        keys_per_server = max(1, self.config.keys_per_multiget // len(servers))
        for server in servers:
            sport = self.next_sport()
            self.emit(client, server, sport=sport, dport=11211,
                      size_bytes=self.config.request_size_bytes)
            # Response: value payloads, sent after a tiny lookup delay.
            responses = max(1, keys_per_server // 10)
            self.sim.schedule(self.config.server_think_ns,
                              self._respond, server, client, sport, responses)
        self.sim.schedule(self.exp_delay(self.config.mean_request_gap_ns),
                          self._multiget, client)

    def _respond(self, server: str, client: str, sport: int, responses: int) -> None:
        if not self.active:
            return
        for seq in range(responses):
            self.emit(server, client, sport=11211, dport=sport,
                      size_bytes=self.config.value_size_bytes, seq=seq)
