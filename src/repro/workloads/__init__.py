"""Synthetic traffic generators with the temporal texture of the paper's
three testbed applications.

The paper runs Hadoop Terasort, Spark GraphX PageRank, and memcached
(mc-crusher multi-get) on six servers (§8, "Workload").  We cannot run
those applications, but the measurement results depend on the *shape* of
the traffic they emit, not on the computation:

* **Hadoop Terasort** (:class:`HadoopTerasortWorkload`) — long shuffle
  flows between mappers and reducers; heavy, bursty, ms-scale on/off
  structure.  Imbalance shows at ms scale (Figure 12a's x-axis).
* **GraphX PageRank** (:class:`GraphXPageRankWorkload`) — bulk-synchronous
  supersteps: all workers exchange messages in near-simultaneous bursts
  once per iteration; the master coordinates but moves no bulk data
  (Figure 13's ground truth: the master's port is uncorrelated).
* **memcache** (:class:`MemcacheWorkload`) — a closed-loop stream of
  multi-get requests fanned out to many servers returning small values:
  smooth, evenly distributed, µs-scale traffic (Figure 12c's x-axis is in
  µs, two orders finer than Hadoop's).

Generic generators (:class:`PoissonWorkload`, :class:`OnOffWorkload`)
support tests and custom experiments.
"""

from repro.workloads.base import Workload, WorkloadConfig
from repro.workloads.synthetic import PoissonWorkload, OnOffWorkload
from repro.workloads.hadoop import HadoopTerasortWorkload
from repro.workloads.graphx import GraphXPageRankWorkload
from repro.workloads.memcache import MemcacheWorkload
from repro.workloads.replay import (ReplayWorkload, TraceEntry, load_trace,
                                    record_trace, save_trace)

__all__ = [
    "Workload",
    "WorkloadConfig",
    "PoissonWorkload",
    "OnOffWorkload",
    "HadoopTerasortWorkload",
    "GraphXPageRankWorkload",
    "MemcacheWorkload",
    "ReplayWorkload",
    "TraceEntry",
    "load_trace",
    "record_trace",
    "save_trace",
]
