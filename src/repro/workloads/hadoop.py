"""Hadoop-Terasort-shaped traffic: heavy, bursty shuffle flows.

The paper's instance: Terasort over 5 B rows, 10 mappers and 8 reducers
on six servers (§8).  The network-relevant phase is the **shuffle**: every
mapper streams its partitioned output to every reducer in long, bursty
transfers.  Flow-level characteristics we reproduce:

* a modest number of *elephant* flows (mapper × reducer pairs), each a
  distinct 5-tuple, long-lived enough for ECMP hash collisions to create
  persistent imbalance;
* bursty service: map output becomes available in waves, so each transfer
  alternates multi-millisecond bursts with pauses — imbalance fluctuates
  at millisecond scale, matching Figure 12a's ms-scale x-axis.

Mapper and reducer roles are assigned round-robin over the participating
hosts (several logical tasks share a server, as in the testbed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import MS, US
from repro.workloads.base import Workload, WorkloadConfig


@dataclass
class HadoopConfig(WorkloadConfig):
    num_mappers: int = 10
    num_reducers: int = 8
    #: Mean burst length of a shuffle wave.
    mean_burst_ns: int = 2 * MS
    #: Mean pause between waves of one mapper→reducer transfer.
    mean_pause_ns: int = 6 * MS
    #: Packet gap inside a burst (per-flow burst rate ≈ 1.2 Gbps at
    #: 1500 B / 10 µs).
    burst_gap_ns: int = 10 * US
    size_bytes: int = 1500


class HadoopTerasortWorkload(Workload):
    """Shuffle-phase traffic of a Terasort job."""

    def __init__(self, network, config: Optional[HadoopConfig] = None) -> None:
        super().__init__(network, config or HadoopConfig())
        self.config: HadoopConfig
        self.transfers: list[tuple[str, str, int]] = []

    def _assign_tasks(self) -> None:
        hosts = self.hosts
        mappers = [hosts[i % len(hosts)] for i in range(self.config.num_mappers)]
        reducers = [hosts[(i + 1) % len(hosts)] for i in range(self.config.num_reducers)]
        self.transfers = []
        for m in mappers:
            for r in reducers:
                if m == r:
                    continue  # local shuffle segments never hit the network
                self.transfers.append((m, r, self.next_sport()))

    def _begin(self) -> None:
        self._assign_tasks()
        for src, dst, sport in self.transfers:
            # Stagger transfer starts: map tasks finish at different times.
            self.sim.schedule(self.exp_delay(self.config.mean_pause_ns),
                              self._shuffle_wave, src, dst, sport)

    def _shuffle_wave(self, src: str, dst: str, sport: int) -> None:
        if not self.active:
            return
        burst_ns = self.exp_delay(self.config.mean_burst_ns)
        num = max(1, burst_ns // max(self.config.burst_gap_ns, 1))
        self.emit_burst(src, dst, sport=sport, dport=13562,  # Hadoop shuffle port
                        num_packets=num, size_bytes=self.config.size_bytes,
                        gap_ns=self.config.burst_gap_ns)
        self.sim.schedule(burst_ns + self.exp_delay(self.config.mean_pause_ns),
                          self._shuffle_wave, src, dst, sport)
