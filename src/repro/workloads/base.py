"""Workload framework.

A workload binds to a :class:`~repro.sim.network.Network`, owns a seeded
RNG, and schedules packet emissions on hosts.  ``start()`` installs the
initial events; generation continues until ``stop_ns`` (open-loop — the
generators do not react to congestion, which matches the measurement
methodology: the paper observes traffic, it does not model TCP dynamics).

Workloads allocate source ports from a private counter so that distinct
logical transfers hash to distinct ECMP members, exactly like distinct
TCP connections would.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Optional

from repro.sim.engine import S, Simulator
from repro.sim.network import Network
from repro.sim.packet import FlowKey, Packet


@dataclass
class WorkloadConfig:
    """Knobs common to all workloads."""

    #: Workload-private RNG seed (independent of the network seed).
    seed: int = 1
    #: Simulation time at which generation begins.
    start_ns: int = 0
    #: Simulation time after which no new packets are emitted.
    stop_ns: int = 1 * S
    #: Hosts participating; None means every host in the network.
    hosts: Optional[list[str]] = None


class Workload(abc.ABC):
    """Base class for traffic generators."""

    def __init__(self, network: Network, config: Optional[WorkloadConfig] = None) -> None:
        self.network = network
        self.config = config or WorkloadConfig()
        self.rng = random.Random(self.config.seed)
        self.packets_emitted = 0
        self._sport_counter = 10_000
        self._started = False

    @property
    def sim(self) -> Simulator:
        return self.network.sim

    @property
    def hosts(self) -> list[str]:
        if self.config.hosts is not None:
            return list(self.config.hosts)
        return sorted(self.network.hosts)

    def start(self) -> None:
        """Install the workload's initial events (idempotent)."""
        if self._started:
            return
        self._started = True
        self.sim.schedule_at(max(self.config.start_ns, self.sim.now), self._begin)

    @abc.abstractmethod
    def _begin(self) -> None:
        """Schedule the first generation events (runs at start time)."""

    # ------------------------------------------------------------------
    # Helpers for subclasses
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self.sim.now < self.config.stop_ns

    def next_sport(self) -> int:
        """A fresh source port, so each transfer is a distinct 5-tuple."""
        self._sport_counter += 1
        return self._sport_counter

    def emit(self, src: str, dst: str, *, sport: int, dport: int,
             size_bytes: int, seq: int = 0, proto: int = 6) -> None:
        """Send one packet now (subject to the NIC's pacing)."""
        if not self.active:
            return
        host = self.network.host(src)
        flow = FlowKey(src, dst, sport, dport, proto)
        host.send_packet(Packet(flow=flow, size_bytes=size_bytes, seq=seq))
        self.packets_emitted += 1

    def emit_burst(self, src: str, dst: str, *, sport: int, dport: int,
                   num_packets: int, size_bytes: int, gap_ns: int) -> None:
        """Emit ``num_packets`` spaced ``gap_ns`` apart (one transfer)."""
        def send(seq: int) -> None:
            if not self.active:
                return
            self.emit(src, dst, sport=sport, dport=dport,
                      size_bytes=size_bytes, seq=seq)
            if seq + 1 < num_packets:
                self.sim.schedule(max(gap_ns, 1), send, seq + 1)

        if num_packets > 0:
            send(0)

    def exp_delay(self, mean_ns: float) -> int:
        """An exponentially distributed delay (Poisson process gap)."""
        return max(1, int(self.rng.expovariate(1.0 / mean_ns)))
