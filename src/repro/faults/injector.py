"""Binds a :class:`~repro.faults.schedule.FaultSchedule` to a live network.

The injector resolves every event's target against the simulation
objects (links, switches, control planes, clocks), schedules the
apply/revert callbacks on the discrete-event engine, and keeps an audit
log of everything it did.  All stochastic fault behaviour draws from the
network's dedicated ``_child_rng("faults")`` stream — the workload, PTP
and control-plane streams are untouched, so the *only* way a fault run
diverges from the fault-free golden trace is through the faults
themselves.

Arming an **empty** schedule is a strict no-op: no events scheduled, no
RNG constructed, no object touched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from collections.abc import Callable
from typing import Any, Optional

from repro.faults.schedule import FAULT_KINDS, FaultEvent, FaultSchedule
from repro.sim.channel import BernoulliLoss, GilbertElliottLoss, Link
from repro.sim.network import Network

#: Fault kinds that need a snapshot deployment (they act on the
#: control plane, which only exists once a deployment is wired).
_CP_KINDS = frozenset({"cp_crash", "cp_overflow", "cp_slow"})


@dataclass
class InjectionRecord:
    """One line of the injector's audit log."""

    time_ns: int
    action: str  # "apply" | "revert"
    kind: str
    target: str


class FaultInjector:
    """Schedules and executes the events of one fault schedule.

    Usage::

        injector = FaultInjector(network, schedule, deployment=deployment)
        injector.arm()          # before network.run()
        network.run(until=...)
        injector.log            # audit trail of applies/reverts
    """

    def __init__(self, network: Network, schedule: FaultSchedule,
                 deployment: Optional[object] = None) -> None:
        self.network = network
        self.schedule = schedule
        self.deployment = deployment
        self.sim = network.sim
        self.rng: Optional[random.Random] = None
        self.log: list[InjectionRecord] = []
        self.applied = 0
        self.reverted = 0
        self._armed = False
        #: link name (normalised "a-b") -> Link
        self._links: dict[str, Link] = {}
        for link in network.links:
            self._links[link.name] = link
            if "-" in link.name:
                a, b = link.name.split("-", 1)
                self._links.setdefault(f"{b}-{a}", link)

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(self) -> int:
        """Validate targets and schedule every event; returns the number
        of events armed.  An empty schedule arms nothing and touches
        nothing (the determinism guard depends on this)."""
        if self._armed:
            raise RuntimeError("injector already armed")
        self._armed = True
        if not self.schedule:
            return 0
        self.rng = self.network._child_rng("faults")
        for event in self.schedule:
            self._resolve_targets(event)  # raise now, not mid-run
        for event in self.schedule:
            self.sim.schedule_at(max(event.at_ns, self.sim.now),
                                 self._apply, event)
        return len(self.schedule)

    # ------------------------------------------------------------------
    # Attribution
    # ------------------------------------------------------------------
    def attribution(self, snapshots, *, horizon_ns: int):
        """Join this injector's audit log with snapshot outcomes — which
        fault span overlapped which epoch's collection window.  See
        :func:`repro.faults.attribution.attribute_epochs`."""
        from repro.faults.attribution import attribute_epochs
        return attribute_epochs(self.log, snapshots, horizon_ns=horizon_ns)

    # ------------------------------------------------------------------
    # Target resolution
    # ------------------------------------------------------------------
    def _resolve_targets(self, event: FaultEvent) -> list[Any]:
        layer = FAULT_KINDS[event.kind]
        if event.kind in _CP_KINDS:
            cps = getattr(self.deployment, "control_planes", None)
            if cps is None:
                raise ValueError(
                    f"{event.kind} targets the snapshot control plane; "
                    "construct FaultInjector with deployment=...")
            if event.target == "*":
                return [cps[name] for name in sorted(cps)]
            if event.target not in cps:
                raise ValueError(
                    f"{event.kind}: no control plane on {event.target!r}")
            return [cps[event.target]]
        if layer == "link":
            if event.target == "*":
                return list(self.network.links)
            link = self._links.get(event.target)
            if link is None:
                raise ValueError(
                    f"{event.kind}: no link named {event.target!r} "
                    f"(known: {sorted(l.name for l in self.network.links)})")
            return [link]
        if layer == "switch":
            switches = self.network.switches
            if event.target == "*":
                return [switches[name] for name in sorted(switches)]
            if event.target not in switches:
                raise ValueError(
                    f"{event.kind}: no switch named {event.target!r}")
            return [switches[event.target]]
        if layer == "clock":
            clocks = self.network.ptp.clocks
            if event.target == "*":
                return sorted(clocks)
            if event.target not in clocks:
                raise ValueError(
                    f"{event.kind}: no clock named {event.target!r}")
            return [event.target]
        raise AssertionError(f"unhandled layer {layer!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Apply / revert
    # ------------------------------------------------------------------
    def _apply(self, event: FaultEvent) -> None:
        revert_fns: list[Callable[[], None]] = []
        for obj in self._resolve_targets(event):
            revert = getattr(self, f"_apply_{event.kind}")(obj, event)
            if revert is not None:
                revert_fns.append(revert)
        self.applied += 1
        self.log.append(InjectionRecord(self.sim.now, "apply",
                                        event.kind, event.target))
        if event.duration_ns > 0 and revert_fns:
            self.sim.schedule(event.duration_ns, self._revert,
                              event, revert_fns)

    def _revert(self, event: FaultEvent,
                revert_fns: list[Callable[[], None]]) -> None:
        for fn in revert_fns:
            fn()
        self.reverted += 1
        self.log.append(InjectionRecord(self.sim.now, "revert",
                                        event.kind, event.target))

    # -- link faults ---------------------------------------------------
    def _apply_link_down(self, link: Link, event: FaultEvent):
        link.up = False

        def revert() -> None:
            link.up = True
        return revert

    def _apply_link_loss(self, link: Link, event: FaultEvent):
        params = event.params
        model_name = params.get("model", "gilbert_elliott")
        assert self.rng is not None
        if model_name == "bernoulli":
            model = BernoulliLoss(float(params.get("p", 0.01)), self.rng)
        elif model_name == "gilbert_elliott":
            model = GilbertElliottLoss(
                self.rng,
                p_good_to_bad=float(params.get("p_good_to_bad", 0.01)),
                p_bad_to_good=float(params.get("p_bad_to_good", 0.1)),
                p_loss_good=float(params.get("p_loss_good", 0.0)),
                p_loss_bad=float(params.get("p_loss_bad", 0.5)))
        else:
            raise ValueError(f"link_loss: unknown model {model_name!r}")
        previous = link.loss
        link.loss = model

        def revert() -> None:
            link.loss = previous
        return revert

    def _apply_link_delay(self, link: Link, event: FaultEvent):
        extra = int(event.params.get("extra_ns", 100_000))
        if extra <= 0:
            raise ValueError(f"link_delay: extra_ns must be > 0, got {extra}")
        link.extra_delay_ns = extra

        def revert() -> None:
            link.extra_delay_ns = 0
        return revert

    # -- switch faults -------------------------------------------------
    def _apply_queue_squeeze(self, switch, event: FaultEvent):
        capacity = int(event.params.get("capacity", 8))
        if capacity < 1:
            raise ValueError(
                f"queue_squeeze: capacity must be >= 1, got {capacity}")
        queues = [switch.ports[p].egress.queue
                  for p in switch.connected_ports()]
        previous = [q.capacity_packets for q in queues]
        for queue in queues:
            queue.capacity_packets = capacity

        def revert() -> None:
            for queue, cap in zip(queues, previous):
                queue.capacity_packets = cap
        return revert

    def _apply_unit_stall(self, switch, event: FaultEvent):
        port = event.params.get("port")
        if port is None:
            ports = switch.connected_ports()
        else:
            ports = [int(port)]
        queues = [switch.ports[p].egress.queue for p in ports]
        for queue in queues:
            queue.pause()

        def revert() -> None:
            for queue in queues:
                queue.resume()
        return revert

    # -- control-plane faults ------------------------------------------
    def _apply_cp_crash(self, cp, event: FaultEvent):
        cp.crash()

        def revert() -> None:
            cp.restart()
        return revert

    def _apply_cp_overflow(self, cp, event: FaultEvent):
        capacity = int(event.params.get("capacity", 8))
        if capacity < 1:
            raise ValueError(
                f"cp_overflow: capacity must be >= 1, got {capacity}")
        previous = cp.channel.capacity
        cp.channel.capacity = capacity

        def revert() -> None:
            cp.channel.capacity = previous
        return revert

    def _apply_cp_slow(self, cp, event: FaultEvent):
        scale = float(event.params.get("scale", 10.0))
        if scale <= 0:
            raise ValueError(f"cp_slow: scale must be > 0, got {scale}")
        previous = cp.channel.service_scale
        cp.channel.service_scale = scale

        def revert() -> None:
            cp.channel.service_scale = previous
        return revert

    # -- clock faults --------------------------------------------------
    def _apply_clock_holdover(self, name: str, event: FaultEvent):
        ptp = self.network.ptp
        ptp.hold(name)

        def revert() -> None:
            ptp.release(name)
        return revert

    def _apply_clock_step(self, name: str, event: FaultEvent):
        delta = int(event.params.get("delta_ns", 50_000))
        self.network.ptp.clocks[name].step(delta)
        return None  # instantaneous; the next PTP sync removes it
