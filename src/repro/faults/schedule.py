"""Declarative fault schedules.

A :class:`FaultSchedule` is a validated list of :class:`FaultEvent`\\ s —
*what* goes wrong, *where*, *when*, and for *how long*.  Schedules are
plain data: JSON-serialisable (so a fault profile participates in the
TrialSpec cache fingerprint) and entirely decoupled from the simulation
objects they will act on (the :class:`~repro.faults.injector.FaultInjector`
binds them to a live network at arm time).

Determinism contract
--------------------
* An **empty schedule arms nothing**: zero events are scheduled and zero
  random numbers are drawn, so a run with ``FaultSchedule()`` is
  byte-identical to a run with no schedule at all (the golden-trace
  guard pins this).
* Stochastic fault *behaviour* (e.g. Gilbert–Elliott loss draws) comes
  from the network's dedicated ``_child_rng("faults")`` stream, never
  from the streams driving workloads, PTP, or control planes — injecting
  faults perturbs the simulation through the faults themselves, not
  through RNG stream pollution.
* Stochastic fault *placement* is done ahead of time by the
  :mod:`repro.faults.profile` spec layer, which maps ``(profile, seed)``
  to a concrete schedule through derived per-stream RNGs — same spec,
  same context, same schedule, on every machine.  (The legacy
  :func:`compile_profile` entry point survives as a deprecated shim over
  :class:`~repro.faults.profile.IndependentFaults`.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence
from typing import Any, Optional

from repro.sim.engine import MS

#: Every fault kind the injector understands, with the layer it hooks.
FAULT_KINDS = {
    # sim.channel
    "link_down": "link",        # administrative down; revert flaps it back up
    "link_loss": "link",        # swap in a loss model (bernoulli | gilbert_elliott)
    "link_delay": "link",       # latency spike: extra one-way delay, FIFO-safe
    # sim.switch
    "queue_squeeze": "switch",  # shrink every egress buffer (tail drops)
    "unit_stall": "switch",     # pause egress dequeuing (slow/stuck unit)
    # core.control_plane
    "cp_crash": "switch",       # kill the CP process; revert = restart + recovery
    "cp_overflow": "switch",    # shrink the notification buffer
    "cp_slow": "switch",        # inflate notification service latency
    # sim.clock
    "clock_holdover": "clock",  # stop PTP disciplining (drift accumulates)
    "clock_step": "clock",      # instantaneous offset step (no revert)
}

#: Kinds whose effect is instantaneous — ``duration_ns`` is meaningless
#: and must be 0.
INSTANT_KINDS = frozenset({"clock_step"})


@dataclass
class FaultEvent:
    """One scheduled fault.

    ``target`` names the object the fault applies to: a link (either
    endpoint order, e.g. ``"s0-s1"``), a switch, or a clock owner —
    or ``"*"`` for every eligible object of the kind's layer.
    ``duration_ns == 0`` means the fault is permanent (never reverted);
    for :data:`INSTANT_KINDS` it is the only legal value.
    """

    at_ns: int
    kind: str
    target: str = "*"
    duration_ns: int = 0
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} "
                f"(known: {', '.join(sorted(FAULT_KINDS))})")
        if self.at_ns < 0:
            raise ValueError(f"at_ns must be >= 0, got {self.at_ns}")
        if self.duration_ns < 0:
            raise ValueError(
                f"duration_ns must be >= 0, got {self.duration_ns}")
        if self.kind in INSTANT_KINDS and self.duration_ns:
            raise ValueError(
                f"{self.kind} is instantaneous; duration_ns must be 0")
        if not self.target:
            raise ValueError("target cannot be empty")

    @property
    def layer(self) -> str:
        return FAULT_KINDS[self.kind]

    def to_jsonable(self) -> dict[str, Any]:
        data: dict[str, Any] = {"at_ns": self.at_ns, "kind": self.kind,
                                "target": self.target,
                                "duration_ns": self.duration_ns}
        if self.params:
            data["params"] = {k: self.params[k] for k in sorted(self.params)}
        return data

    @classmethod
    def from_jsonable(cls, data: dict[str, Any]) -> "FaultEvent":
        return cls(at_ns=int(data["at_ns"]), kind=str(data["kind"]),
                   target=str(data.get("target", "*")),
                   duration_ns=int(data.get("duration_ns", 0)),
                   params=dict(data.get("params", {})))


@dataclass
class FaultSchedule:
    """An ordered collection of fault events.

    Events are kept sorted by ``(at_ns, insertion order)`` so arming the
    injector is deterministic regardless of construction order.
    """

    events: list[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise TypeError(f"expected FaultEvent, got {event!r}")
        self._sort()

    def _sort(self) -> None:
        self.events.sort(key=lambda e: e.at_ns)

    def add(self, kind: str, at_ns: int, *, target: str = "*",
            duration_ns: int = 0, **params: Any) -> FaultEvent:
        """Append one event (convenience builder)."""
        event = FaultEvent(at_ns=at_ns, kind=kind, target=target,
                           duration_ns=duration_ns, params=dict(params))
        self.events.append(event)
        self._sort()
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __iter__(self):
        return iter(self.events)

    def to_jsonable(self) -> list[dict[str, Any]]:
        """Stable, JSON-ready form — this is what enters the TrialSpec
        cache fingerprint, so equal schedules always hash equal."""
        return [event.to_jsonable() for event in self.events]

    @classmethod
    def from_jsonable(cls, data: Iterable[dict[str, Any]]) -> "FaultSchedule":
        return cls(events=[FaultEvent.from_jsonable(d) for d in data])


def compile_profile(*, intensity: float, horizon_ns: int,
                    links: Sequence[str] = (),
                    switches: Sequence[str] = (),
                    clocks: Sequence[str] = (),
                    kinds: Optional[Sequence[str]] = None,
                    seed: int = 0,
                    start_ns: int = 0,
                    mean_duration_ns: int = 5 * MS) -> FaultSchedule:
    """Deprecated shim over the :mod:`repro.faults.profile` spec API.

    ``compile_profile(intensity=…, links=…, …)`` is exactly
    ``IndependentFaults(intensity=…).compile(ProfileContext(…))`` —
    same RNG streams, schedule-for-schedule identical — and new code
    should say so directly (the spec form composes with correlated
    groups, maintenance windows and cascades; see docs/FAULTS.md for
    the migration note).
    """
    import warnings

    from repro.faults.profile import IndependentFaults, ProfileContext

    warnings.warn(
        "compile_profile is deprecated; build an IndependentFaults spec "
        "and compile it against a ProfileContext instead "
        "(see docs/FAULTS.md)", DeprecationWarning, stacklevel=2)
    if intensity < 0:
        raise ValueError(f"intensity must be >= 0, got {intensity}")
    context = ProfileContext(horizon_ns=horizon_ns, links=tuple(links),
                             switches=tuple(switches), clocks=tuple(clocks),
                             start_ns=start_ns, seed=seed)
    profile = IndependentFaults(
        intensity=intensity,
        kinds=None if kinds is None else tuple(kinds),
        mean_duration_ns=mean_duration_ns)
    return profile.compile(context)


def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's product method — fine for the small means profiles use."""
    import math
    threshold = math.exp(-mean)
    count, product = 0, rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def _default_params(kind: str, rng: random.Random) -> dict[str, Any]:
    """Reasonable stochastic parameters for profile-compiled events."""
    if kind == "link_loss":
        return {"model": "gilbert_elliott",
                "p_good_to_bad": 0.01,
                "p_bad_to_good": 0.1,
                "p_loss_bad": round(0.3 + 0.6 * rng.random(), 3)}
    if kind == "link_delay":
        return {"extra_ns": int(50_000 + rng.random() * 450_000)}
    if kind == "queue_squeeze":
        return {"capacity": rng.randint(4, 16)}
    if kind == "cp_overflow":
        return {"capacity": rng.randint(4, 32)}
    if kind == "cp_slow":
        return {"scale": round(2.0 + 8.0 * rng.random(), 2)}
    if kind == "clock_step":
        sign = 1 if rng.random() < 0.5 else -1
        return {"delta_ns": sign * int(10_000 + rng.random() * 190_000)}
    return {}
