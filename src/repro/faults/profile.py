"""Composable fault profiles — the spec algebra above :class:`FaultSchedule`.

A :class:`FaultProfile` describes *what kind of chaos* to inject without
naming concrete targets or times; compiling it against a
:class:`ProfileContext` (the target inventory plus the time window and
seed) deterministically yields a concrete
:class:`~repro.faults.schedule.FaultSchedule`.  Profiles are plain,
frozen, JSON-round-trippable dataclasses, so they ride inside trial
params (and therefore cache fingerprints) exactly like schedules do —
and they compose::

    profile = (IndependentFaults(intensity=0.5)
               | CorrelatedGroup(switch="leaf0")          # rack power loss
               | MaintenanceWindow(targets=("spine1-leaf0",),
                                   offset_ns=20 * MS, duration_ns=5 * MS)
               | Cascade(origin="spine0", probability=0.6))
    schedule = profile.compile(ProfileContext.for_topology(
        topo, horizon_ns=60 * MS, seed=42))

Determinism contract
--------------------
* Every profile part draws from RNG streams derived from
  ``(seed, part.stream, …)`` — never from a shared cursor — so composing
  parts, reordering them inside a :class:`Compose`, or adding a new part
  **never reshuffles another part's events**.
* All event placement funnels through one clamp point
  (:meth:`ProfileContext.emit`), which guarantees every compiled event —
  including correlated-group jitter offsets and cascade propagation
  delays that would otherwise escape — lands inside
  ``[start_ns, start_ns + horizon_ns)`` with its duration clamped to the
  window.
* A profile whose every stochastic part has zero intensity compiles to
  an **empty schedule**: arming it is byte-identical to no injector at
  all (pinned by the golden-trace guard).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from collections.abc import Iterable, Mapping
from typing import Any, ClassVar, Optional

from repro.faults.schedule import (FAULT_KINDS, INSTANT_KINDS, FaultSchedule,
                                   _default_params, _poisson)
from repro.sim.engine import MS

__all__ = [
    "Cascade",
    "Compose",
    "CorrelatedGroup",
    "FaultProfile",
    "IndependentFaults",
    "MaintenanceWindow",
    "ProfileContext",
]


@dataclass(frozen=True)
class ProfileContext:
    """Where and when a profile compiles: targets, window, seed.

    ``links``/``switches``/``clocks`` are the eligible targets of each
    fault layer (see :data:`~repro.faults.schedule.FAULT_KINDS`).  The
    context is profile-independent, so the *same* context compiles every
    part of a composite — that is what makes the parts' schedules merge
    coherently.
    """

    horizon_ns: int
    links: tuple[str, ...] = ()
    switches: tuple[str, ...] = ()
    clocks: tuple[str, ...] = ()
    start_ns: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.horizon_ns <= 0:
            raise ValueError(f"horizon_ns must be > 0, got {self.horizon_ns}")
        if self.start_ns < 0:
            raise ValueError(f"start_ns must be >= 0, got {self.start_ns}")
        # Accept lists (e.g. straight from JSON) but store tuples.
        for name in ("links", "switches", "clocks"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))

    @classmethod
    def for_topology(cls, topo: Any, *, horizon_ns: int, start_ns: int = 0,
                     seed: int = 0) -> "ProfileContext":
        """Derive the target inventory from a
        :class:`~repro.topology.graph.Topology`: fabric (switch-to-switch)
        links, every switch, and one clock per switch.  Host-facing links
        are excluded — downing them only throttles the workload."""
        from repro.topology.graph import NodeKind

        switches = tuple(topo.switches)
        fabric = tuple(sorted(
            f"{spec.a}-{spec.b}" for spec in topo.links
            if topo.kind(spec.a) is NodeKind.SWITCH
            and topo.kind(spec.b) is NodeKind.SWITCH))
        return cls(horizon_ns=horizon_ns, links=fabric, switches=switches,
                   clocks=switches, start_ns=start_ns, seed=seed)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def end_ns(self) -> int:
        return self.start_ns + self.horizon_ns

    def targets_for(self, kind: str) -> tuple[str, ...]:
        layer = FAULT_KINDS[kind]
        return {"link": self.links, "switch": self.switches,
                "clock": self.clocks}[layer]

    def incident_links(self, switch: str) -> tuple[str, ...]:
        """Links with ``switch`` as an endpoint (name-prefix/suffix
        match; link names are ``"a-b"``)."""
        return tuple(link for link in self.links
                     if link.startswith(f"{switch}-")
                     or link.endswith(f"-{switch}"))

    def switch_adjacency(self) -> dict[str, tuple[str, ...]]:
        """Switch-to-switch neighbor map recovered from the link names
        (sorted neighbors, for deterministic iteration)."""
        known = set(self.switches)
        adjacency: dict[str, set[str]] = {s: set() for s in self.switches}
        for link in self.links:
            for a in self.switches:
                if not link.startswith(f"{a}-"):
                    continue
                b = link[len(a) + 1:]
                if b in known:
                    adjacency[a].add(b)
                    adjacency[b].add(a)
                    break
        return {s: tuple(sorted(peers)) for s, peers in adjacency.items()}

    def rng(self, *parts: Any) -> random.Random:
        """One derived RNG stream per ``(seed, *parts)`` key.  Streams
        are independent: no profile part can disturb another's draws."""
        return random.Random("/".join(str(p) for p in (self.seed, *parts)))

    # ------------------------------------------------------------------
    # The single clamp/validate point (every compiled event goes here)
    # ------------------------------------------------------------------
    def emit(self, schedule: FaultSchedule, kind: str, at_ns: int, *,
             target: str, duration_ns: int = 0,
             params: Optional[Mapping[str, Any]] = None) -> None:
        """Append one event, clamped into the compile window.

        ``at_ns`` is clamped into ``[start_ns, end_ns)`` — uniform draws
        can round onto the horizon edge and correlated/cascade offsets
        can overshoot it — and ``duration_ns`` is clamped so the revert
        also lands inside the window (instant kinds are forced to 0).
        """
        at = min(max(int(at_ns), self.start_ns), self.end_ns - 1)
        if kind in INSTANT_KINDS:
            duration = 0
        else:
            duration = max(0, min(int(duration_ns), self.end_ns - at))
        schedule.add(kind, at, target=target, duration_ns=duration,
                     **dict(params or {}))


# ----------------------------------------------------------------------
# The profile algebra
# ----------------------------------------------------------------------

#: JSON ``type`` tag -> spec class, populated by ``__init_subclass__``.
_PROFILE_TYPES: dict[str, type] = {}


class FaultProfile:
    """Base of every profile spec.

    Subclasses are frozen dataclasses with a ``profile_type`` class tag;
    they implement :meth:`compile` and inherit JSON round-tripping and
    the ``|`` composition operator.
    """

    profile_type: ClassVar[str] = ""

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        tag = cls.__dict__.get("profile_type", "")
        if tag:
            _PROFILE_TYPES[tag] = cls

    # -- compilation ---------------------------------------------------
    def compile(self, ctx: ProfileContext) -> FaultSchedule:
        raise NotImplementedError

    # -- composition ---------------------------------------------------
    def __or__(self, other: "FaultProfile") -> "Compose":
        if not isinstance(other, FaultProfile):
            return NotImplemented
        mine = self.parts if isinstance(self, Compose) else (self,)
        theirs = other.parts if isinstance(other, Compose) else (other,)
        return Compose(parts=mine + theirs)

    __add__ = __or__

    # -- serialization -------------------------------------------------
    def to_jsonable(self) -> dict[str, Any]:
        """Stable JSON form (``{"type": …, <fields>}``) — what rides in
        trial params and on the ``--fault-profile`` CLI flag."""
        data: dict[str, Any] = {"type": self.profile_type}
        for f in fields(self):  # type: ignore[arg-type]
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            data[f.name] = value
        return data

    @staticmethod
    def from_jsonable(data: Mapping[str, Any]) -> "FaultProfile":
        """Reconstruct any registered spec (round-trip inverse of
        :meth:`to_jsonable`)."""
        if not isinstance(data, Mapping) or "type" not in data:
            raise ValueError(
                "a serialized FaultProfile is an object with a 'type' tag; "
                f"got {data!r}")
        tag = data["type"]
        cls = _PROFILE_TYPES.get(tag)
        if cls is None:
            raise ValueError(
                f"unknown fault profile type {tag!r} "
                f"(known: {', '.join(sorted(_PROFILE_TYPES))})")
        payload = {k: v for k, v in data.items() if k != "type"}
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown field(s) {', '.join(unknown)} for profile "
                f"type {tag!r}")
        return cls._from_fields(payload)

    @classmethod
    def _from_fields(cls, payload: dict[str, Any]) -> "FaultProfile":
        for f in fields(cls):  # type: ignore[arg-type]
            if f.name in payload and isinstance(payload[f.name], list):
                payload[f.name] = tuple(payload[f.name])
        return cls(**payload)  # type: ignore[call-arg]


def _check_kinds(kinds: Iterable[str]) -> None:
    for kind in kinds:
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r} "
                f"(known: {', '.join(sorted(FAULT_KINDS))})")


@dataclass(frozen=True)
class IndependentFaults(FaultProfile):
    """Faults drawn independently per (kind, target) — the classic
    intensity profile (and the exact semantics of the deprecated
    ``compile_profile``).

    ``intensity`` is the expected number of events per (kind, target)
    over the window; times are uniform, durations exponential with mean
    ``mean_duration_ns``.  Each (kind, target) pair draws from its own
    ``(seed, stream, kind, target)`` RNG stream, so adding a target or a
    kind never reshuffles the events of the others.
    """

    profile_type: ClassVar[str] = "independent"

    intensity: float = 0.0
    kinds: Optional[tuple[str, ...]] = None
    mean_duration_ns: int = 5 * MS
    stream: str = "faults"

    def __post_init__(self) -> None:
        if self.kinds is not None and not isinstance(self.kinds, tuple):
            object.__setattr__(self, "kinds", tuple(self.kinds))
        if self.intensity < 0:
            raise ValueError(
                f"intensity must be >= 0, got {self.intensity}")
        if self.mean_duration_ns <= 0:
            raise ValueError(
                f"mean_duration_ns must be > 0, got {self.mean_duration_ns}")
        if self.kinds is not None:
            _check_kinds(self.kinds)

    def compile(self, ctx: ProfileContext) -> FaultSchedule:
        schedule = FaultSchedule()
        if self.intensity == 0:
            return schedule
        chosen = (sorted(FAULT_KINDS) if self.kinds is None
                  else list(self.kinds))
        for kind in chosen:
            for target in ctx.targets_for(kind):
                rng = ctx.rng(self.stream, kind, target)
                count = _poisson(rng, self.intensity)
                for _ in range(count):
                    at = ctx.start_ns + int(rng.random() * ctx.horizon_ns)
                    if kind in INSTANT_KINDS:
                        duration = 0
                    else:
                        duration = 1 + int(
                            rng.expovariate(1.0 / self.mean_duration_ns))
                    ctx.emit(schedule, kind, at, target=target,
                             duration_ns=duration,
                             params=_default_params(kind, rng))
        return schedule


@dataclass(frozen=True)
class CorrelatedGroup(FaultProfile):
    """One correlated failure group — e.g. rack power loss.

    With the defaults, compiling downs **every fabric link of one
    switch and that switch's control plane at the same instant** (the
    ROADMAP's "rack power loss = all links + CP of one switch").
    ``switch=None`` picks the victim deterministically from the
    context's seed; ``at_ns=None`` draws the group's start uniformly in
    the window.  ``jitter_ns`` staggers the members by independent
    uniform offsets (0 keeps the group simultaneous).
    """

    profile_type: ClassVar[str] = "correlated"

    switch: Optional[str] = None
    at_ns: Optional[int] = None
    duration_ns: int = 10 * MS
    jitter_ns: int = 0
    link_kind: str = "link_down"
    switch_kind: str = "cp_crash"
    stream: str = "rack"

    def __post_init__(self) -> None:
        if self.duration_ns < 0:
            raise ValueError(
                f"duration_ns must be >= 0, got {self.duration_ns}")
        if self.jitter_ns < 0:
            raise ValueError(f"jitter_ns must be >= 0, got {self.jitter_ns}")
        _check_kinds((self.link_kind, self.switch_kind))
        if FAULT_KINDS[self.link_kind] != "link":
            raise ValueError(f"link_kind must be a link fault, "
                             f"got {self.link_kind!r}")
        if FAULT_KINDS[self.switch_kind] != "switch":
            raise ValueError(f"switch_kind must be a switch fault, "
                             f"got {self.switch_kind!r}")

    def compile(self, ctx: ProfileContext) -> FaultSchedule:
        schedule = FaultSchedule()
        if not ctx.switches:
            return schedule
        rng = ctx.rng(self.stream, "group")
        switch = self.switch if self.switch is not None else (
            sorted(ctx.switches)[int(rng.random() * len(ctx.switches))])
        if switch not in ctx.switches:
            raise ValueError(
                f"correlated group names unknown switch {switch!r}")
        at = self.at_ns if self.at_ns is not None else (
            ctx.start_ns + int(rng.random() * ctx.horizon_ns))

        def offset() -> int:
            return rng.randint(0, self.jitter_ns) if self.jitter_ns else 0

        for link in sorted(ctx.incident_links(switch)):
            ctx.emit(schedule, self.link_kind, at + offset(), target=link,
                     duration_ns=self.duration_ns)
        ctx.emit(schedule, self.switch_kind, at + offset(), target=switch,
                 duration_ns=self.duration_ns)
        return schedule


@dataclass(frozen=True)
class MaintenanceWindow(FaultProfile):
    """A fully deterministic scheduled outage — planned maintenance.

    No randomness at all: each named target goes down ``offset_ns``
    after the window start (staggered by ``stagger_ns`` per target for
    rolling maintenance), for ``duration_ns``.
    """

    profile_type: ClassVar[str] = "maintenance"

    targets: tuple[str, ...] = ()
    kind: str = "link_down"
    offset_ns: int = 0
    duration_ns: int = 10 * MS
    stagger_ns: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.targets, tuple):
            object.__setattr__(self, "targets", tuple(self.targets))
        _check_kinds((self.kind,))
        if self.offset_ns < 0:
            raise ValueError(f"offset_ns must be >= 0, got {self.offset_ns}")
        if self.duration_ns < 0:
            raise ValueError(
                f"duration_ns must be >= 0, got {self.duration_ns}")
        if self.stagger_ns < 0:
            raise ValueError(
                f"stagger_ns must be >= 0, got {self.stagger_ns}")

    def compile(self, ctx: ProfileContext) -> FaultSchedule:
        schedule = FaultSchedule()
        for index, target in enumerate(self.targets):
            at = ctx.start_ns + self.offset_ns + index * self.stagger_ns
            ctx.emit(schedule, self.kind, at, target=target,
                     duration_ns=self.duration_ns)
        return schedule


@dataclass(frozen=True)
class Cascade(FaultProfile):
    """A seeded failure cascade through the fabric.

    The ``origin`` switch fails (all its fabric links go down; with
    ``include_cp`` its control plane crashes too).  Each failure then
    propagates to every not-yet-failed neighbor independently with
    ``probability``, after an exponential delay with mean
    ``spread_delay_ns``, up to ``max_depth`` hops from the origin.  All
    draws come from the cascade's own RNG stream, in sorted-neighbor
    order, so the realized cascade is a pure function of (profile,
    context).
    """

    profile_type: ClassVar[str] = "cascade"

    origin: Optional[str] = None
    probability: float = 0.5
    spread_delay_ns: int = 1 * MS
    duration_ns: int = 5 * MS
    max_depth: int = 3
    at_ns: Optional[int] = None
    include_cp: bool = False
    stream: str = "cascade"

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}")
        if self.spread_delay_ns <= 0:
            raise ValueError(
                f"spread_delay_ns must be > 0, got {self.spread_delay_ns}")
        if self.duration_ns < 0:
            raise ValueError(
                f"duration_ns must be >= 0, got {self.duration_ns}")
        if self.max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {self.max_depth}")

    def compile(self, ctx: ProfileContext) -> FaultSchedule:
        schedule = FaultSchedule()
        if not ctx.switches:
            return schedule
        rng = ctx.rng(self.stream, "spread")
        origin = self.origin if self.origin is not None else (
            sorted(ctx.switches)[int(rng.random() * len(ctx.switches))])
        if origin not in ctx.switches:
            raise ValueError(f"cascade names unknown switch {origin!r}")
        at = self.at_ns if self.at_ns is not None else (
            ctx.start_ns + int(rng.random() * ctx.horizon_ns))
        adjacency = ctx.switch_adjacency()

        failed: dict[str, int] = {origin: at}
        frontier = [(origin, at, 0)]
        while frontier:
            switch, when, depth = frontier.pop(0)
            if depth >= self.max_depth:
                continue
            for neighbor in adjacency.get(switch, ()):
                if neighbor in failed:
                    continue
                if rng.random() >= self.probability:
                    continue
                delay = 1 + int(rng.expovariate(1.0 / self.spread_delay_ns))
                failed[neighbor] = when + delay
                frontier.append((neighbor, when + delay, depth + 1))

        for switch in sorted(failed):
            when = failed[switch]
            for link in sorted(ctx.incident_links(switch)):
                ctx.emit(schedule, "link_down", when, target=link,
                         duration_ns=self.duration_ns)
            if self.include_cp:
                ctx.emit(schedule, "cp_crash", when, target=switch,
                         duration_ns=self.duration_ns)
        return schedule


@dataclass(frozen=True)
class Compose(FaultProfile):
    """The union of several profiles, compiled against one context.

    Because every part draws from its own derived streams, the merge is
    exactly the multiset union of the parts' events: reordering parts
    changes nothing but the (re-sorted) event order, and dropping a part
    removes exactly its events.
    """

    profile_type: ClassVar[str] = "compose"

    parts: tuple[FaultProfile, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.parts, tuple):
            object.__setattr__(self, "parts", tuple(self.parts))
        for part in self.parts:
            if not isinstance(part, FaultProfile):
                raise TypeError(f"expected FaultProfile, got {part!r}")

    def compile(self, ctx: ProfileContext) -> FaultSchedule:
        events = []
        for part in self.parts:
            events.extend(part.compile(ctx).events)
        return FaultSchedule(events=events)

    def to_jsonable(self) -> dict[str, Any]:
        return {"type": self.profile_type,
                "parts": [part.to_jsonable() for part in self.parts]}

    @classmethod
    def _from_fields(cls, payload: dict[str, Any]) -> "Compose":
        parts = payload.get("parts", [])
        return cls(parts=tuple(FaultProfile.from_jsonable(p) for p in parts))
