"""repro.faults — deterministic fault injection for the snapshot testbed.

The paper's claim is not that snapshots work on a healthy network; it is
that they stay *causally consistent* when the network misbehaves (§4.2,
§6).  This package turns that claim into something the repo can sweep,
through a spec → compile → inject pipeline:

* :mod:`~repro.faults.profile` — the **FaultProfile algebra**: JSON-able
  spec dataclasses (:class:`IndependentFaults`,
  :class:`CorrelatedGroup` for rack-power-loss modes,
  :class:`MaintenanceWindow`, :class:`Cascade`, and :class:`Compose`)
  that compile deterministically against a :class:`ProfileContext` into
  a concrete schedule.  Parts draw from content-keyed seeded streams, so
  composing or reordering profiles never reshuffles another part's
  events.
* :class:`~repro.faults.schedule.FaultSchedule` — a declarative,
  JSON-serialisable list of timed :class:`~repro.faults.schedule.FaultEvent`\\ s
  (link flaps, bursty loss, latency spikes, buffer squeezes, unit
  stalls, control-plane crashes/overflows/slowdowns, clock holdover and
  steps).
* :class:`~repro.faults.injector.FaultInjector` — binds a schedule to a
  live :class:`~repro.sim.network.Network` (and optionally a
  :class:`~repro.core.deployment.SpeedlightDeployment`), scheduling the
  apply/revert callbacks on the event engine.
* :mod:`~repro.faults.attribution` — maps the injector's log back onto
  snapshot epochs: which fault overlapped which epoch, and how the epoch
  fared.
* :class:`~repro.core.recovery.RecoveryPolicy` (re-exported here) — the
  §6 recovery knobs as one spec, swept against profiles by
  ``repro experiments recovery``.

``from repro.faults import FaultProfile, CorrelatedGroup, RecoveryPolicy``
is the supported entry point; everything in ``__all__`` is public API.

Determinism contract: an empty schedule arms zero events and draws zero
randomness — runs with ``FaultSchedule()`` are byte-identical to runs
with no schedule at all.  :func:`compile_profile` survives as a
deprecated shim over :class:`IndependentFaults`.  See ``docs/FAULTS.md``.
"""

from repro.core.recovery import (RECOVERY_PRESETS, RecoveryPolicy,
                                 recovery_preset)
from repro.faults.attribution import (EpochAttribution, FaultSpan,
                                      attribute_epochs, spans_from_log)
from repro.faults.injector import FaultInjector, InjectionRecord
from repro.faults.profile import (Cascade, Compose, CorrelatedGroup,
                                  FaultProfile, IndependentFaults,
                                  MaintenanceWindow, ProfileContext)
from repro.faults.schedule import (FAULT_KINDS, INSTANT_KINDS, FaultEvent,
                                   FaultSchedule, compile_profile)

__all__ = [
    "FAULT_KINDS",
    "INSTANT_KINDS",
    "Cascade",
    "Compose",
    "CorrelatedGroup",
    "EpochAttribution",
    "FaultEvent",
    "FaultInjector",
    "FaultProfile",
    "FaultSchedule",
    "FaultSpan",
    "IndependentFaults",
    "InjectionRecord",
    "MaintenanceWindow",
    "ProfileContext",
    "RECOVERY_PRESETS",
    "RecoveryPolicy",
    "attribute_epochs",
    "compile_profile",
    "recovery_preset",
    "spans_from_log",
]
