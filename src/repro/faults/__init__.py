"""repro.faults — deterministic fault injection for the snapshot testbed.

The paper's claim is not that snapshots work on a healthy network; it is
that they stay *causally consistent* when the network misbehaves (§4.2,
§6).  This package turns that claim into something the repo can sweep:

* :class:`~repro.faults.schedule.FaultSchedule` — a declarative,
  JSON-serialisable list of timed :class:`~repro.faults.schedule.FaultEvent`\\ s
  (link flaps, bursty loss, latency spikes, buffer squeezes, unit
  stalls, control-plane crashes/overflows/slowdowns, clock holdover and
  steps).
* :func:`~repro.faults.schedule.compile_profile` — deterministically
  expands a scalar fault intensity into a concrete schedule.
* :class:`~repro.faults.injector.FaultInjector` — binds a schedule to a
  live :class:`~repro.sim.network.Network` (and optionally a
  :class:`~repro.core.deployment.SpeedlightDeployment`), scheduling the
  apply/revert callbacks on the event engine.

Determinism contract: an empty schedule arms zero events and draws zero
randomness — runs with ``FaultSchedule()`` are byte-identical to runs
with no schedule at all.  See ``docs/FAULTS.md``.
"""

from repro.faults.injector import FaultInjector, InjectionRecord
from repro.faults.schedule import (FAULT_KINDS, INSTANT_KINDS, FaultEvent,
                                   FaultSchedule, compile_profile)

__all__ = [
    "FAULT_KINDS",
    "INSTANT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "FaultInjector",
    "InjectionRecord",
    "compile_profile",
]
