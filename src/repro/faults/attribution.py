"""Per-epoch fault attribution — which fault touched which snapshot.

The injector's audit log records *when* each fault was applied and
reverted; the observer records *how* each snapshot epoch fared.  This
module joins the two: for every epoch it reports the fault spans whose
active interval overlapped the epoch's collection window, alongside the
epoch's outcome (complete / consistent / excluded devices / retries).
The faults experiment surfaces the result so a flagged-inconsistent
epoch can be traced to the link flap or CP crash that caused it instead
of being a bare statistic.

Everything here is pure data-plumbing over already-recorded values — no
RNG, no simulation access — so attribution never perturbs a run.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence
from typing import Any, Optional

from repro.core.snapshot import GlobalSnapshot
from repro.faults.injector import InjectionRecord


@dataclass(frozen=True)
class FaultSpan:
    """One fault's active interval, reconstructed from the audit log.

    ``end_ns is None`` means the fault was never reverted — it was
    permanent (``duration_ns == 0``) or the run ended first.  Instant
    kinds (e.g. ``clock_step``) appear as zero-length spans.
    """

    kind: str
    target: str
    start_ns: int
    end_ns: Optional[int] = None

    def overlaps(self, window_start_ns: int, window_end_ns: int) -> bool:
        """Does this span intersect ``[window_start_ns, window_end_ns]``?

        Zero-length spans (instant faults) count when they land inside
        the window.
        """
        if self.start_ns > window_end_ns:
            return False
        return self.end_ns is None or self.end_ns >= window_start_ns

    def to_jsonable(self) -> dict[str, Any]:
        return {"kind": self.kind, "target": self.target,
                "start_ns": self.start_ns, "end_ns": self.end_ns}


def spans_from_log(log: Iterable[InjectionRecord]) -> list[FaultSpan]:
    """Pair apply/revert records into :class:`FaultSpan`\\ s.

    Reverts are matched FIFO per ``(kind, target)`` — the injector
    schedules reverts in apply order for a given key, so first-in
    first-out reconstructs the true intervals even when the same fault
    recurs on the same target.
    """
    open_spans: dict[tuple[str, str], list[int]] = {}
    spans: list[FaultSpan] = []
    for record in sorted(log, key=lambda r: r.time_ns):
        key = (record.kind, record.target)
        if record.action == "apply":
            open_spans.setdefault(key, []).append(record.time_ns)
        elif record.action == "revert":
            pending = open_spans.get(key)
            if not pending:
                raise ValueError(
                    f"revert without apply for {record.kind}/{record.target} "
                    f"at t={record.time_ns}")
            spans.append(FaultSpan(kind=record.kind, target=record.target,
                                   start_ns=pending.pop(0),
                                   end_ns=record.time_ns))
        else:
            raise ValueError(f"unknown log action {record.action!r}")
    for (kind, target), starts in open_spans.items():
        for start in starts:
            spans.append(FaultSpan(kind=kind, target=target, start_ns=start))
    spans.sort(key=lambda s: (s.start_ns, s.kind, s.target))
    return spans


@dataclass(frozen=True)
class EpochAttribution:
    """One epoch's outcome joined with the faults that overlapped it."""

    epoch: int
    window_start_ns: int
    window_end_ns: int
    complete: bool
    consistent: bool
    excluded_devices: tuple[str, ...]
    retries: int
    overlapping: tuple[FaultSpan, ...]

    @property
    def faulted(self) -> bool:
        return bool(self.overlapping)

    @property
    def clean(self) -> bool:
        """Completed consistently with nothing excluded."""
        return self.complete and self.consistent and not self.excluded_devices

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "epoch": self.epoch,
            "window_start_ns": self.window_start_ns,
            "window_end_ns": self.window_end_ns,
            "complete": self.complete,
            "consistent": self.consistent,
            "excluded_devices": list(self.excluded_devices),
            "retries": self.retries,
            "overlapping": [span.to_jsonable() for span in self.overlapping],
        }


def attribute_epochs(log: Iterable[InjectionRecord],
                     snapshots: Sequence[GlobalSnapshot], *,
                     horizon_ns: int) -> list[EpochAttribution]:
    """Attribute fault spans to snapshot epochs.

    An epoch's collection window runs from its requested wall time to
    the last record read for it (or ``horizon_ns`` when nothing was ever
    read — the epoch waited out the whole run).  A span is attributed
    when its active interval intersects that window: a link that was
    down anywhere inside the window can have delayed, flagged, or
    starved the epoch.
    """
    spans = spans_from_log(log)
    result: list[EpochAttribution] = []
    for snap in sorted(snapshots, key=lambda s: s.epoch):
        start = snap.requested_wall_ns
        if snap.records:
            end = max(r.read_ns for r in snap.records.values())
        else:
            end = horizon_ns
        end = max(end, start)
        overlapping = tuple(s for s in spans if s.overlaps(start, end))
        result.append(EpochAttribution(
            epoch=snap.epoch, window_start_ns=start, window_end_ns=end,
            complete=snap.complete, consistent=snap.consistent,
            excluded_devices=tuple(sorted(snap.excluded_devices)),
            retries=snap.retries, overlapping=overlapping))
    return result


__all__ = [
    "EpochAttribution",
    "FaultSpan",
    "attribute_epochs",
    "spans_from_log",
]
