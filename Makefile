# Convenience targets for the Speedlight reproduction.

PYTHON ?= python
# Worker processes for the trial runner (make figures JOBS=4).
JOBS ?= 1

.PHONY: install test lint bench figures experiments examples \
        quick-experiments clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	ruff check src tests benchmarks examples

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every table/figure through the shared trial runner: one
# combined batch (parallel across experiments with JOBS>1), cached under
# .repro-cache so a re-run recomputes only what changed.
figures:
	$(PYTHON) -m repro experiments --jobs $(JOBS)

experiments: figures

quick-experiments:
	$(PYTHON) -m repro experiments --quick --jobs $(JOBS)

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/load_balancing_study.py
	$(PYTHON) examples/incast_detection.py
	$(PYTHON) examples/partial_deployment.py
	$(PYTHON) examples/forwarding_loop_detection.py
	$(PYTHON) examples/capacity_planning.py
	$(PYTHON) examples/loss_localization.py

clean:
	rm -rf .pytest_cache .hypothesis .repro-cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
