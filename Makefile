# Convenience targets for the Speedlight reproduction.

PYTHON ?= python

.PHONY: install test bench experiments examples quick-experiments clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every table/figure at full configuration.
experiments:
	$(PYTHON) -m repro run motivation
	$(PYTHON) -m repro run table1
	$(PYTHON) -m repro run fig9
	$(PYTHON) -m repro run fig10
	$(PYTHON) -m repro run fig11
	$(PYTHON) -m repro run fig12
	$(PYTHON) -m repro run fig13
	$(PYTHON) -m repro run ablation-ideal
	$(PYTHON) -m repro run ablation-initiation
	$(PYTHON) -m repro run ablation-transport
	$(PYTHON) -m repro run scaling

quick-experiments:
	for exp in motivation table1 fig9 fig10 fig11 fig12 fig13 \
	           ablation-ideal ablation-initiation ablation-transport \
	           scaling; do \
	    $(PYTHON) -m repro run $$exp --quick || exit 1; \
	done

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/load_balancing_study.py
	$(PYTHON) examples/incast_detection.py
	$(PYTHON) examples/partial_deployment.py
	$(PYTHON) examples/forwarding_loop_detection.py
	$(PYTHON) examples/capacity_planning.py
	$(PYTHON) examples/loss_localization.py

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
