# Convenience targets for the Speedlight reproduction.

PYTHON ?= python
# Worker processes for the trial runner (make figures JOBS=4).
JOBS ?= 1
# Entry label recorded by `make bench` in BENCH_core.json.
BENCH_LABEL ?= adhoc
# Experiment profiled by `make profile` (any name from `experiments --list`).
PROFILE_EXP ?= fig10

.PHONY: install test lint statics statics-flow typecheck static-checks \
        bench bench-smoke bench-experiments \
        chaos-smoke profile figures experiments examples \
        quick-experiments clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

lint:
	ruff check src tests benchmarks examples

# Determinism & simulation-invariant static analysis (docs/DETERMINISM.md).
# Exits non-zero on any unsuppressed finding; CI gates on this.
statics:
	$(PYTHON) -m repro statics src tests

# Whole-program flow rules (FLOW001/MSG001/MSG002/DET005) over the
# sharded actor packages, pragma-free — the CI gate, locally.  Summaries
# are cached content-keyed under .repro-cache/statics-flow, so warm
# re-runs are milliseconds.
statics-flow:
	$(PYTHON) -m repro statics --flow --forbid-pragmas \
	    src/repro/sim/shard.py src/repro/core/sharded.py \
	    src/repro/core/aggregation.py src/repro/service \
	    src/repro/updates

typecheck:
	mypy

# Everything the CI static-checks job runs (statics + flow + types + lint).
static-checks: statics statics-flow typecheck lint

# Hot-path micro-suite (docs/PERF.md): records a labelled entry in
# BENCH_core.json and fails on >25% normalized event-loop or
# sharded-core (shard_smoke) regression against the committed
# sharded-core baseline.
bench:
	$(PYTHON) -m repro.perf.bench --label $(BENCH_LABEL) \
	    --out BENCH_core.json --check-against BENCH_core.json \
	    --baseline-label snapshot-service --max-regression 0.25

# CI-sized variant: quick iteration counts, no history rewrite.
# Includes the 2-shard fat-tree smoke of the space-parallel core
# (docs/SHARDING.md).
bench-smoke:
	$(PYTHON) -m repro.perf.bench --quick --label ci-smoke \
	    --out bench-smoke.json --check-against BENCH_core.json \
	    --baseline-label snapshot-service --max-regression 0.25

# The full experiment regeneration benchmarks (pytest-benchmark).
bench-experiments:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Snapshots-under-failure smoke (docs/FAULTS.md): the quick fault
# sweep, the correlated rack-loss scenario, the quick recovery sweep
# and the updates-under-chaos scenario (docs/UPDATES.md), all uncached;
# fails if any completed-and-consistent snapshot violates the link
# non-negativity or conservation audits, if the recovery sweep leaves
# any profile without a Pareto frontier, or if the update verdict
# ordering (timed monotone, twophase loop-free) breaks under faults.
# Ends with the service-under-faults check (docs/SERVICE.md): a control
# plane crashes and restarts mid-stream while the continuous snapshot
# pipeline keeps ingesting into its bounded delta store.
chaos-smoke:
	$(PYTHON) -m repro.service.smoke
	$(PYTHON) -c "import sys; \
	from repro.experiments import faults, recovery, updates; \
	from repro.runtime import TrialRunner; \
	runner = TrialRunner(jobs=$(JOBS)); \
	sweep = faults.run(faults.FaultsConfig.quick(), runner); \
	print(sweep.report()); \
	correlated = faults.run(faults.FaultsConfig.correlated(), runner); \
	print(); print(correlated.report()); \
	partial = faults.partial_invariance(runner=runner); \
	print(); print(partial.report()); \
	rec = recovery.run(recovery.RecoveryConfig.quick(), runner); \
	print(); print(rec.report()); \
	frontiers = all(rec.frontier(prof) \
	                for prof in {p for (_, p) in rec.rows}); \
	upd = updates.run(updates.UpdatesConfig.chaos(), runner); \
	print(); print(upd.report()); \
	sys.exit(0 if sweep.all_audits_ok and correlated.all_audits_ok \
	         and partial.ok and frontiers \
	         and upd.ordering_ok and upd.all_audits_ok else 1)"

# cProfile one experiment end-to-end: one .prof per trial under
# profiles/, then print the hottest functions of each.
profile:
	rm -rf profiles && mkdir -p profiles
	$(PYTHON) -m repro run $(PROFILE_EXP) --quick --no-cache \
	    --profile profiles
	@for f in profiles/*.prof; do \
	    echo "== $$f"; \
	    $(PYTHON) -m repro.perf.profiles $$f --limit 15; \
	done

# Regenerate every table/figure through the shared trial runner: one
# combined batch (parallel across experiments with JOBS>1), cached under
# .repro-cache so a re-run recomputes only what changed.
figures:
	$(PYTHON) -m repro experiments --jobs $(JOBS)

experiments: figures

quick-experiments:
	$(PYTHON) -m repro experiments --quick --jobs $(JOBS)

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/load_balancing_study.py
	$(PYTHON) examples/incast_detection.py
	$(PYTHON) examples/partial_deployment.py
	$(PYTHON) examples/forwarding_loop_detection.py
	$(PYTHON) examples/capacity_planning.py
	$(PYTHON) examples/loss_localization.py

clean:
	rm -rf .pytest_cache .hypothesis .repro-cache src/repro.egg-info \
	       profiles bench-smoke.json
	find . -name __pycache__ -type d -exec rm -rf {} +
